// Chain interleaving: the engine of the pipelined-consistency check.
//
// Definition 7 asks, for each maximal chain p, whether some linearization
// of H_{U_H ∪ p} (all updates plus p's own events) is recognized by the
// ADT. The chain's events are totally ordered, so a search state is the
// pair (position on the chain, downset of executed updates) together with
// the ADT states reachable there; the DP walks positions and downsets
// forward, filtering states through the chain's query observations.
//
// ω handling: the chain's trailing ω-query (if any) stands for infinitely
// many copies. Since U_H is finite, all but finitely many copies follow
// every update, so the ω observation must hold in the final state reached
// after executing *all* updates. Conversely placing all copies there is a
// valid linearization, so the condition is exact, not just necessary.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lin/downset.hpp"
#include "lin/update_poset.hpp"

namespace ucw {

template <UqAdt A>
class ChainLinearizer {
 public:
  using State = typename A::State;

  ChainLinearizer(const History<A>&&, ExploreBudget = {}) = delete;
  ChainLinearizer(const History<A>& h, ExploreBudget budget = {})
      : history_(&h), poset_(h), budget_(budget) {}

  /// Decides lin(H_{U_H ∪ chain(p)}) ∩ L(O) ≠ ∅; nullopt = budget out.
  [[nodiscard]] std::optional<bool> chain_has_linearization(ProcessId p) {
    stats_ = ExploreStats{};
    build_chain_view(p);

    // seen[(pos, downset)] -> distinct ADT states reachable there.
    std::unordered_map<Key, StateSet, KeyHash> seen;
    std::vector<Key> frontier;
    auto add = [&](std::size_t pos, Bitset64 done, State s) -> bool {
      Key key{pos, done};
      auto [it, fresh] = seen.try_emplace(key);
      if (fresh) frontier.push_back(key);
      if (it->second.insert(std::move(s)).second) {
        if (++stats_.states_stored > budget_.max_states) {
          stats_.budget_exceeded = true;
          return false;
        }
      }
      return true;
    };

    if (!add(0, Bitset64{}, history_->adt().initial())) return std::nullopt;

    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const Key key = frontier[i];
      // Copy: `seen` may rehash as successors are inserted.
      const StateSet states = seen.at(key);
      const auto [pos, done] = key;
      ++stats_.downsets_visited;

      // (a) consume the next finite chain event.
      if (pos < chain_.size()) {
        const ChainStep& step = chain_[pos];
        if (done.contains(step.required_updates)) {
          if (step.update_slot.has_value()) {
            Bitset64 after = done;
            after.set(*step.update_slot);
            for (const auto& s : states) {
              ++stats_.transitions;
              auto next = history_->adt().transition(
                  s, poset_.update(*step.update_slot));
              if (!add(pos + 1, after, std::move(next))) return std::nullopt;
            }
          } else {
            for (const auto& s : states) {
              ++stats_.transitions;
              if (history_->adt().output(s, step.query->first) ==
                  step.query->second) {
                if (!add(pos + 1, done, s)) return std::nullopt;
              }
            }
          }
        }
      }

      // (b) execute any enabled off-chain update.
      for (unsigned k : offchain_) {
        if (done.test(k)) continue;
        if (!done.contains(poset_.pred_mask(k))) continue;
        if (chain_pos_required_[k] > pos) continue;
        Bitset64 after = done;
        after.set(k);
        for (const auto& s : states) {
          ++stats_.transitions;
          auto next = history_->adt().transition(s, poset_.update(k));
          if (!add(pos, after, std::move(next))) return std::nullopt;
        }
      }
    }

    // Accept: whole chain consumed, every update executed, ω holds.
    const Key goal{chain_.size(), poset_.full()};
    auto it = seen.find(goal);
    if (it != seen.end()) {
      for (const auto& s : it->second) {
        if (!omega_obs_.has_value() ||
            history_->adt().output(s, omega_obs_->first) ==
                omega_obs_->second) {
          return true;
        }
      }
    }
    if (stats_.budget_exceeded) return std::nullopt;
    return false;
  }

  [[nodiscard]] const ExploreStats& stats() const { return stats_; }

 private:
  using Key = std::pair<std::size_t, Bitset64>;
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t seed = std::hash<std::size_t>{}(k.first);
      hash_combine(seed, hash_value(k.second));
      return seed;
    }
  };
  using StateSet = std::unordered_set<State, ValueHash>;

  struct ChainStep {
    std::optional<unsigned> update_slot;            // set when update
    const QueryObservation<A>* query = nullptr;     // set when query
    Bitset64 required_updates;  // off-chain updates that must precede
  };

  void build_chain_view(ProcessId p) {
    chain_.clear();
    offchain_.clear();
    omega_obs_.reset();
    chain_pos_required_.assign(poset_.count(), 0);

    const auto& ids = history_->chain(p);
    std::unordered_map<EventId, std::size_t> pos_of;  // finite chain events
    for (EventId id : ids) {
      const auto& e = history_->event(id);
      if (e.omega) {
        omega_obs_ = e.query();
        continue;
      }
      ChainStep step;
      if (e.is_update()) {
        step.update_slot =
            static_cast<unsigned>(history_->update_slot(id));
      } else {
        step.query = &e.query();
      }
      // Off-chain updates forced (via extra order edges) before this event.
      for (std::size_t k = 0; k < poset_.count(); ++k) {
        const EventId uid = poset_.event_id(k);
        if (history_->event(uid).pid != p &&
            history_->prog_before(uid, id)) {
          step.required_updates.set(static_cast<unsigned>(k));
        }
      }
      pos_of[id] = chain_.size();
      chain_.push_back(step);
    }

    for (std::size_t k = 0; k < poset_.count(); ++k) {
      const EventId uid = poset_.event_id(k);
      if (history_->event(uid).pid == p) continue;
      offchain_.push_back(static_cast<unsigned>(k));
      // Chain events that must precede this off-chain update (via extra
      // edges) pin the earliest chain position at which it may run.
      std::size_t required = 0;
      for (const auto& [eid, pos] : pos_of) {
        if (history_->prog_before(eid, uid)) {
          required = std::max(required, pos + 1);
        }
      }
      chain_pos_required_[k] = required;
    }
  }

  const History<A>* history_;
  UpdatePoset<A> poset_;
  ExploreBudget budget_;
  ExploreStats stats_;

  std::vector<ChainStep> chain_;
  std::vector<unsigned> offchain_;
  std::vector<std::size_t> chain_pos_required_;
  std::optional<QueryObservation<A>> omega_obs_;
};

}  // namespace ucw
