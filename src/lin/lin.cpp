// Explicit instantiations for the common ADT configurations.
#include "lin/chain.hpp"
#include "lin/downset.hpp"
#include "lin/enumerate.hpp"

#include "adt/all.hpp"

namespace ucw {

template class DownsetExplorer<SetAdt<int>>;
template class DownsetExplorer<CounterAdt>;
template class DownsetExplorer<MemoryAdt<std::string, int>>;
template class ChainLinearizer<SetAdt<int>>;
template class ChainLinearizer<CounterAdt>;

}  // namespace ucw
