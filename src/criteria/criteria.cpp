// Explicit instantiations for the common ADT configurations.
#include "criteria/all.hpp"

#include "adt/all.hpp"

namespace ucw {

template class VisibilitySolver<SetAdt<int>>;
template class VisibilitySolver<CounterAdt>;
template CheckResult check_ec(const History<SetAdt<int>>&, ExploreBudget);
template CheckResult check_uc(const History<SetAdt<int>>&, ExploreBudget);
template CheckResult check_pc(const History<SetAdt<int>>&, ExploreBudget);
template CheckResult check_sc(const History<SetAdt<int>>&, ExploreBudget);
template CheckResult check_sec(const History<SetAdt<int>>&, std::size_t);
template CheckResult check_suc(const History<SetAdt<int>>&, std::size_t);
template CheckResult check_sec_insert_wins(const History<SetAdt<int>>&,
                                           std::size_t);
template CheckResult validate_suc_certificate(const History<SetAdt<int>>&,
                                              const RunCertificate&);
template CheckResult validate_insert_wins_certificate(
    const History<SetAdt<int>>&, const RunCertificate&);

}  // namespace ucw
