// Strong eventual consistency for the Insert-wins set (Definition 10).
//
// Definition 10 is the concurrent specification of the OR-Set: H must be
// SEC for the set *and* the witness visibility relation must satisfy, for
// every value x and query q returning s:
//
//   x ∈ s  ⟺  ∃u ∈ vis(q, I(x)) such that ∀u′ ∈ vis(q, D(x)): u ̸vis→ u′
//
// i.e. x is present exactly when some visible insertion of x is not
// superseded by any visible deletion of x. The predicate reads visibility
// *between updates* (u vis u′), so the solver's exhaustive update-
// visibility mode is required: minimizing update edges would wrongly rule
// out histories that need an insertion to be covered by a deletion.
#pragma once

#include <variant>

#include "adt/set.hpp"
#include "criteria/verdict.hpp"
#include "criteria/visibility_solver.hpp"

namespace ucw {

template <typename V>
[[nodiscard]] bool insert_wins_holds(const History<SetAdt<V>>& h,
                                     const VisibilityAssignment& vis) {
  using S = SetAdt<V>;
  UpdatePoset<S> poset(h);
  // u vis u′ between updates: slot(u) ∈ V(event of u′), u ≠ u′.
  auto update_vis = [&](std::size_t a, std::size_t b) {
    return a != b &&
           vis.visible[poset.event_id(b)].test(static_cast<unsigned>(a));
  };

  for (EventId qid : h.query_ids()) {
    const auto& obs = h.event(qid).query();
    const Bitset64 visible = vis.visible[qid];

    // Values to examine: everything any update touches (a value that was
    // never inserted must be absent, which the ⟺ also enforces).
    std::set<V> support;
    for (std::size_t k = 0; k < poset.count(); ++k) {
      const auto& u = poset.update(k);
      if (const auto* ins = std::get_if<SetInsert<V>>(&u)) {
        support.insert(ins->value);
      } else {
        support.insert(std::get<SetDelete<V>>(u).value);
      }
    }
    for (const V& x : obs.second) support.insert(x);

    for (const V& x : support) {
      bool should_be_present = false;
      for (std::size_t a = 0; a < poset.count(); ++a) {
        if (!visible.test(static_cast<unsigned>(a))) continue;
        const auto* ins = std::get_if<SetInsert<V>>(&poset.update(a));
        if (ins == nullptr || !(ins->value == x)) continue;
        bool superseded = false;
        for (std::size_t b = 0; b < poset.count(); ++b) {
          if (!visible.test(static_cast<unsigned>(b))) continue;
          const auto* del = std::get_if<SetDelete<V>>(&poset.update(b));
          if (del == nullptr || !(del->value == x)) continue;
          if (update_vis(a, b)) {
            superseded = true;
            break;
          }
        }
        if (!superseded) {
          should_be_present = true;
          break;
        }
      }
      if (should_be_present != (obs.second.count(x) > 0)) return false;
    }
  }
  return true;
}

/// Decides Definition 10 for a set history.
template <typename V>
[[nodiscard]] CheckResult check_sec_insert_wins(
    const History<SetAdt<V>>& h, std::size_t max_nodes = 5'000'000) {
  using S = SetAdt<V>;
  CheckResult result;
  typename VisibilitySolver<S>::Options opt;
  opt.search_update_visibility = true;
  opt.max_nodes = max_nodes;
  opt.extra_predicate = [](const History<S>& hist,
                           const VisibilityAssignment& vis) {
    return insert_wins_holds(hist, vis);
  };
  VisibilitySolver<S> solver(h, opt);
  auto verdict = solver.solve();
  result.stats.downsets_visited = solver.nodes_explored();
  if (!verdict.has_value()) {
    result.verdict = Verdict::Unknown;
    result.explanation = "insert-wins visibility search budget exceeded";
    result.stats.budget_exceeded = true;
  } else if (*verdict) {
    result.verdict = Verdict::Yes;
    result.explanation =
        "a visibility relation satisfies SEC plus the insert-wins rule";
  } else {
    result.verdict = Verdict::No;
    result.explanation = "no visibility relation is insert-wins consistent";
  }
  return result;
}

}  // namespace ucw
