// Tri-state verdicts for the consistency checkers.
//
// The exact checkers are small-model deciders: within their exploration
// budget they answer Yes or No definitively; if the budget runs out they
// answer Unknown — they never guess. Callers that need a boolean must
// decide how to treat Unknown themselves.
#pragma once

#include <string>

#include "lin/downset.hpp"

namespace ucw {

enum class Verdict { Yes, No, Unknown };

[[nodiscard]] inline std::string to_string(Verdict v) {
  switch (v) {
    case Verdict::Yes:
      return "yes";
    case Verdict::No:
      return "no";
    case Verdict::Unknown:
      return "unknown";
  }
  return "?";
}

/// Conjunction with Unknown-propagation: No dominates, then Unknown.
[[nodiscard]] inline Verdict operator&&(Verdict a, Verdict b) {
  if (a == Verdict::No || b == Verdict::No) return Verdict::No;
  if (a == Verdict::Unknown || b == Verdict::Unknown) return Verdict::Unknown;
  return Verdict::Yes;
}

/// Result of one criterion check.
struct CheckResult {
  Verdict verdict = Verdict::Unknown;
  std::string explanation;  ///< human-readable witness / refutation sketch
  ExploreStats stats;

  [[nodiscard]] bool yes() const { return verdict == Verdict::Yes; }
  [[nodiscard]] bool no() const { return verdict == Verdict::No; }
};

}  // namespace ucw
