// Strong eventual consistency checker (paper, Definition 6).
//
// H is SEC when some acyclic reflexive visibility relation containing the
// program order satisfies eventual delivery, growth, and strong
// convergence (queries seeing the same updates are answerable by one
// state — any state, reachable or not). Decided exactly for small
// histories by the visibility solver; see visibility_solver.hpp for the
// search-space reduction and its justification.
#pragma once

#include "criteria/verdict.hpp"
#include "criteria/visibility_solver.hpp"

namespace ucw {

template <UqAdt A>
[[nodiscard]] CheckResult check_sec(const History<A>& h,
                                    std::size_t max_nodes = 5'000'000) {
  CheckResult result;
  typename VisibilitySolver<A>::Options opt;
  opt.max_nodes = max_nodes;
  VisibilitySolver<A> solver(h, opt);
  auto verdict = solver.solve();
  result.stats.downsets_visited = solver.nodes_explored();
  if (!verdict.has_value()) {
    result.verdict = Verdict::Unknown;
    result.explanation = "visibility search budget exceeded";
    result.stats.budget_exceeded = true;
  } else if (*verdict) {
    result.verdict = Verdict::Yes;
    result.explanation = "found a visibility relation with consistent "
                         "per-visibility states";
  } else {
    result.verdict = Verdict::No;
    result.explanation =
        "no visibility relation reconciles the query outputs";
  }
  return result;
}

}  // namespace ucw
