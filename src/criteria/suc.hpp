// Strong update consistency checker (paper, Definition 9).
//
// SUC strengthens SEC with a total order ≤ ⊇ vis such that every query is
// explained by executing exactly its visible updates in ≤-order (strong
// sequential convergence). The solver reduces ≤ to a total order on the
// updates constrained by ↦|U, vis|U and the query-through family
// {u′ < u : u′ ∈ V(q), q ↦ u}; DESIGN.md sketches why the reduction is
// exact in both directions.
#pragma once

#include <sstream>

#include "criteria/verdict.hpp"
#include "criteria/visibility_solver.hpp"

namespace ucw {

template <UqAdt A>
[[nodiscard]] CheckResult check_suc(const History<A>& h,
                                    std::size_t max_nodes = 5'000'000) {
  CheckResult result;
  typename VisibilitySolver<A>::Options opt;
  opt.require_suc = true;
  opt.max_nodes = max_nodes;
  VisibilitySolver<A> solver(h, opt);
  auto verdict = solver.solve();
  result.stats.downsets_visited = solver.nodes_explored();
  if (!verdict.has_value()) {
    result.verdict = Verdict::Unknown;
    result.explanation = "visibility/order search budget exceeded";
    result.stats.budget_exceeded = true;
  } else if (*verdict) {
    result.verdict = Verdict::Yes;
    std::ostringstream os;
    os << "witness update order:";
    UpdatePoset<A> poset(h);
    for (unsigned k : solver.witness_order()) {
      os << ' ' << h.adt().format_update(poset.update(k));
    }
    result.explanation = os.str();
  } else {
    result.verdict = Verdict::No;
    result.explanation =
        "no (visibility, total order) pair explains every query";
  }
  return result;
}

}  // namespace ucw
