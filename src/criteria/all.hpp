// Umbrella header for the consistency-criteria checkers.
#pragma once

#include "criteria/certificate.hpp"   // IWYU pragma: export
#include "criteria/ec.hpp"            // IWYU pragma: export
#include "criteria/insert_wins.hpp"   // IWYU pragma: export
#include "criteria/matrix.hpp"        // IWYU pragma: export
#include "criteria/pc.hpp"            // IWYU pragma: export
#include "criteria/per_key.hpp"       // IWYU pragma: export
#include "criteria/sc.hpp"            // IWYU pragma: export
#include "criteria/sec.hpp"           // IWYU pragma: export
#include "criteria/suc.hpp"           // IWYU pragma: export
#include "criteria/uc.hpp"            // IWYU pragma: export
#include "criteria/verdict.hpp"       // IWYU pragma: export
