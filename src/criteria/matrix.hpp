// Run every criterion on one history: the "Figure 1 matrix".
//
// Produces the classification table the paper's Figure 1 presents — one
// row per history, one column per criterion — and is reused by the
// property tests exercising Proposition 2 (SUC ⇒ SEC ∧ UC, UC ⇒ EC).
#pragma once

#include <array>
#include <string>

#include "criteria/ec.hpp"
#include "criteria/pc.hpp"
#include "criteria/sec.hpp"
#include "criteria/suc.hpp"
#include "criteria/uc.hpp"
#include "criteria/verdict.hpp"

namespace ucw {

enum class Criterion { EC, SEC, PC, UC, SUC };

[[nodiscard]] inline std::string to_string(Criterion c) {
  switch (c) {
    case Criterion::EC:
      return "EC";
    case Criterion::SEC:
      return "SEC";
    case Criterion::PC:
      return "PC";
    case Criterion::UC:
      return "UC";
    case Criterion::SUC:
      return "SUC";
  }
  return "?";
}

inline constexpr std::array<Criterion, 5> kAllCriteria = {
    Criterion::EC, Criterion::SEC, Criterion::PC, Criterion::UC,
    Criterion::SUC};

struct CriteriaMatrixRow {
  CheckResult ec, sec, pc, uc, suc;

  [[nodiscard]] const CheckResult& get(Criterion c) const {
    switch (c) {
      case Criterion::EC:
        return ec;
      case Criterion::SEC:
        return sec;
      case Criterion::PC:
        return pc;
      case Criterion::UC:
        return uc;
      case Criterion::SUC:
        return suc;
    }
    return ec;
  }
};

template <UqAdt A>
[[nodiscard]] CheckResult check_criterion(const History<A>& h, Criterion c,
                                          ExploreBudget budget = {},
                                          std::size_t solver_nodes =
                                              5'000'000) {
  switch (c) {
    case Criterion::EC:
      return check_ec(h, budget);
    case Criterion::SEC:
      return check_sec(h, solver_nodes);
    case Criterion::PC:
      return check_pc(h, budget);
    case Criterion::UC:
      return check_uc(h, budget);
    case Criterion::SUC:
      return check_suc(h, solver_nodes);
  }
  return {};
}

template <UqAdt A>
[[nodiscard]] CriteriaMatrixRow check_all_criteria(
    const History<A>& h, ExploreBudget budget = {},
    std::size_t solver_nodes = 5'000'000) {
  CriteriaMatrixRow row;
  row.ec = check_ec(h, budget);
  row.sec = check_sec(h, solver_nodes);
  row.pc = check_pc(h, budget);
  row.uc = check_uc(h, budget);
  row.suc = check_suc(h, solver_nodes);
  return row;
}

}  // namespace ucw
