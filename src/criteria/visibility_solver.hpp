// Exact small-model solver for strong eventual consistency (Definition 6)
// and strong update consistency (Definition 9).
//
// Both criteria quantify existentially over a visibility relation; SUC
// additionally over a total order containing it. The solver searches for
// a witness in a reduced — but provably sufficient — space:
//
//  * A visibility relation is represented by the updates visible to each
//    event, V : E → 2^U (vis edges whose source is a query add nothing
//    beyond the program order already required, so we never choose them).
//  * V must be ⊇-monotone along ↦ (growth), contain {u : u ↦ e} and the
//    event itself for updates (contains ↦, reflexivity), and equal U at
//    ω-events (eventual delivery: an update may be missed by only
//    finitely many events).
//  * For plain SEC the updates' visibility is fixed at its forced minimum:
//    extra update→update edges only propagate into later events' forced
//    sets and add acyclicity constraints, and strong convergence reads
//    only the queries' V — so if any witness exists, the minimized one
//    does. The insert-wins check (Definition 10) *does* read update→update
//    visibility in both directions, so it enables the exhaustive mode.
//  * Strong convergence: queries with equal V must be jointly satisfiable
//    by a single state, decided by the ADT's satisfying_state (any s ∈ S,
//    reachable or not — Definition 6 allows an implementation that
//    ignores updates altogether).
//  * Acyclicity of vis ∪ ↦ is checked on the full event digraph.
//
// For SUC the witness total order ≤ restricted to updates must extend
//    ↦|U  ∪  vis|U  ∪  { u′ → u : u′ ∈ V(q), q ↦ u }.
// The third family is what makes ≤ extensible to all events: u′ must
// precede q (vis ⊆ ≤), and q precedes u (↦ ⊆ ≤). Conversely any total
// update order extending these three extends to a total order on E
// (append queries right after their visible sets, respecting chains), so
// the reduction is exact. Each query is then checked by executing V(q)
// in ≤-order; that state must produce the recorded output (strong
// sequential convergence).
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "criteria/verdict.hpp"
#include "history/history.hpp"
#include "lin/update_poset.hpp"
#include "util/bitset64.hpp"

namespace ucw {

/// A candidate witness: updates visible to each event, by event id.
struct VisibilityAssignment {
  std::vector<Bitset64> visible;
};

template <UqAdt A>
class VisibilitySolver {
 public:
  struct Options {
    bool require_suc = false;
    /// Search update→update visibility exhaustively instead of using the
    /// forced minimum (needed by predicates that read it, e.g.
    /// insert-wins; exponentially more expensive).
    bool search_update_visibility = false;
    /// Extra acceptance predicate evaluated on complete assignments
    /// (after the SEC conditions hold). Used for Definition 10.
    std::function<bool(const History<A>&, const VisibilityAssignment&)>
        extra_predicate;
    std::size_t max_nodes = 5'000'000;
  };

  VisibilitySolver(const History<A>&&, Options) = delete;
  VisibilitySolver(const History<A>& h, Options opt)
      : history_(&h), poset_(h), opt_(std::move(opt)) {}

  /// Searches for a witness; nullopt = budget exceeded (Unknown).
  [[nodiscard]] std::optional<bool> solve() {
    nodes_ = 0;
    exhausted_ = false;
    found_ = false;
    build_topo();
    assignment_.visible.assign(history_->size(), Bitset64{});
    dfs(0);
    if (found_) return true;
    if (exhausted_) return std::nullopt;
    return false;
  }

  [[nodiscard]] std::size_t nodes_explored() const { return nodes_; }

  /// Witness of the last successful solve(): the visibility assignment
  /// and, when require_suc, the update slots in ≤-order.
  [[nodiscard]] const VisibilityAssignment& witness() const {
    return witness_;
  }
  [[nodiscard]] const std::vector<unsigned>& witness_order() const {
    return witness_order_;
  }

 private:
  /// Events sorted so that every program-order predecessor comes first.
  void build_topo() {
    const std::size_t n = history_->size();
    topo_.clear();
    topo_.reserve(n);
    std::vector<bool> placed(n, false);
    for (std::size_t placed_count = 0; placed_count < n;) {
      bool progress = false;
      for (EventId e = 0; e < n; ++e) {
        if (placed[e]) continue;
        bool ready = true;
        for (EventId d = 0; d < n; ++d) {
          if (!placed[d] && d != e && history_->prog_before(d, e)) {
            ready = false;
            break;
          }
        }
        if (ready) {
          topo_.push_back(e);
          placed[e] = true;
          ++placed_count;
          progress = true;
        }
      }
      UCW_CHECK_MSG(progress, "program order must be acyclic");
    }
  }

  [[nodiscard]] Bitset64 forced_visibility(EventId e) const {
    Bitset64 forced;
    for (EventId d = 0; d < history_->size(); ++d) {
      if (d != e && history_->prog_before(d, e)) {
        forced |= assignment_.visible[d];
      }
    }
    if (history_->event(e).is_update()) {
      forced.set(static_cast<unsigned>(history_->update_slot(e)));
    }
    return forced;
  }

  /// Updates that may legally be added to V(e): anything not forced and
  /// not program-ordered after e (which would close a 2-cycle with
  /// vis ⊇ ↦).
  [[nodiscard]] Bitset64 candidate_mask(EventId e, Bitset64 forced) const {
    Bitset64 mask;
    for (std::size_t k = 0; k < poset_.count(); ++k) {
      const EventId uid = poset_.event_id(static_cast<std::size_t>(k));
      if (uid == e) continue;
      if (forced.test(static_cast<unsigned>(k))) continue;
      if (history_->prog_before(e, uid)) continue;
      mask.set(static_cast<unsigned>(k));
    }
    return mask;
  }

  void dfs(std::size_t idx) {
    if (found_ || exhausted_) return;
    if (++nodes_ > opt_.max_nodes) {
      exhausted_ = true;
      return;
    }
    if (idx == topo_.size()) {
      accept();
      return;
    }
    const EventId e = topo_[idx];
    const auto& ev = history_->event(e);
    const Bitset64 forced = forced_visibility(e);

    if (ev.omega) {
      // Eventual delivery: an ω-event sees every update.
      assignment_.visible[e] = poset_.full();
      if (group_consistent(e)) dfs(idx + 1);
      ungroup(e);
      return;
    }

    const bool choose =
        ev.is_query() || (ev.is_update() && opt_.search_update_visibility);
    if (!choose) {
      assignment_.visible[e] = forced;
      dfs(idx + 1);
      return;
    }

    // Enumerate V(e) = forced ∪ extra, extras ⊆ candidates, smallest
    // first (minimal witnesses are found sooner and prune better).
    const Bitset64 cand = candidate_mask(e, forced);
    std::vector<Bitset64> subsets;
    Bitset64 sub;
    while (true) {
      subsets.push_back(sub);
      if (sub == cand) break;
      sub = Bitset64((sub.raw() - cand.raw()) & cand.raw());
    }
    std::stable_sort(subsets.begin(), subsets.end(),
                     [](Bitset64 a, Bitset64 b) {
                       return a.count() < b.count();
                     });
    for (Bitset64 extra : subsets) {
      if (found_ || exhausted_) return;
      assignment_.visible[e] = forced | extra;
      if (!ev.is_query() || group_consistent(e)) {
        dfs(idx + 1);
      }
      if (ev.is_query()) ungroup(e);
    }
  }

  /// Incrementally maintains query groups by V and checks the group of
  /// event e stays jointly satisfiable when e joins it.
  bool group_consistent(EventId e) {
    auto& group = groups_[assignment_.visible[e]];
    group.push_back(e);
    std::vector<QueryObservation<A>> obs;
    obs.reserve(group.size());
    for (EventId q : group) obs.push_back(history_->event(q).query());
    if constexpr (HasSatisfyingState<A>) {
      return history_->adt().satisfying_state(obs).has_value();
    } else {
      // Conservative: only same-input/different-output conflicts refute.
      for (std::size_t i = 0; i < obs.size(); ++i) {
        for (std::size_t j = i + 1; j < obs.size(); ++j) {
          if (obs[i].first == obs[j].first &&
              !(obs[i].second == obs[j].second)) {
            return false;
          }
        }
      }
      return true;
    }
  }

  void ungroup(EventId e) {
    auto it = groups_.find(assignment_.visible[e]);
    if (it != groups_.end() && !it->second.empty() && it->second.back() == e) {
      it->second.pop_back();
      if (it->second.empty()) groups_.erase(it);
    }
  }

  /// Full-assignment checks: acyclicity, then SUC order search and the
  /// extra predicate.
  void accept() {
    if (!vis_acyclic()) return;
    if (opt_.require_suc) {
      if (!suc_order_exists()) return;
    }
    if (opt_.extra_predicate &&
        !opt_.extra_predicate(*history_, assignment_)) {
      return;
    }
    found_ = true;
    witness_ = assignment_;
  }

  [[nodiscard]] bool vis_acyclic() const {
    // Digraph on events: program order plus u → e for u ∈ V(e).
    const std::size_t n = history_->size();
    std::vector<int> color(n, 0);
    std::function<bool(EventId)> cyclic = [&](EventId v) -> bool {
      color[v] = 1;
      for (EventId w = 0; w < n; ++w) {
        bool edge = v != w && history_->prog_before(v, w);
        if (!edge && history_->event(v).is_update() && v != w) {
          edge = assignment_.visible[w].test(
              static_cast<unsigned>(history_->update_slot(v)));
        }
        if (!edge) continue;
        if (color[w] == 1) return true;
        if (color[w] == 0 && cyclic(w)) return true;
      }
      color[v] = 2;
      return false;
    };
    for (EventId v = 0; v < n; ++v) {
      if (color[v] == 0 && cyclic(v)) return false;
    }
    return true;
  }

  /// Enumerates total update orders extending the three constraint
  /// families; each candidate order is checked against every query group.
  bool suc_order_exists() {
    const std::size_t m = poset_.count();
    std::vector<Bitset64> pred(m);
    for (std::size_t k = 0; k < m; ++k) pred[k] = poset_.pred_mask(k);
    // vis|U: a ∈ V(update b) ⇒ a < b.
    for (std::size_t b = 0; b < m; ++b) {
      const EventId bid = poset_.event_id(b);
      Bitset64 vis_b = assignment_.visible[bid];
      vis_b.reset(static_cast<unsigned>(b));
      pred[b] |= vis_b;
    }
    // Query-through: u′ ∈ V(q), q ↦ u ⇒ u′ < u.
    for (EventId q : history_->query_ids()) {
      for (std::size_t b = 0; b < m; ++b) {
        if (history_->prog_before(q, poset_.event_id(b))) {
          pred[b] |= assignment_.visible[q];
          pred[b].reset(static_cast<unsigned>(b));
        }
      }
    }

    // Pre-compute the distinct query groups once per assignment.
    struct Group {
      Bitset64 vis;
      std::vector<QueryObservation<A>> obs;
    };
    std::map<Bitset64, std::vector<QueryObservation<A>>> by_vis;
    for (EventId q : history_->query_ids()) {
      by_vis[assignment_.visible[q]].push_back(history_->event(q).query());
    }
    std::vector<Group> groups;
    groups.reserve(by_vis.size());
    for (auto& [vis, obs] : by_vis) {
      groups.push_back(Group{vis, std::move(obs)});
    }

    std::vector<unsigned> order;
    order.reserve(m);
    Bitset64 placed;
    bool ok = false;
    std::function<void()> rec = [&]() {
      if (ok || exhausted_) return;
      if (++nodes_ > opt_.max_nodes) {
        exhausted_ = true;
        return;
      }
      if (order.size() == m) {
        if (order_satisfies(order, groups)) {
          ok = true;
          witness_order_ = order;
        }
        return;
      }
      for (std::size_t k = 0; k < m; ++k) {
        if (placed.test(static_cast<unsigned>(k))) continue;
        if (!placed.contains(pred[k])) continue;
        placed.set(static_cast<unsigned>(k));
        order.push_back(static_cast<unsigned>(k));
        rec();
        order.pop_back();
        placed.reset(static_cast<unsigned>(k));
        if (ok || exhausted_) return;
      }
    };
    rec();
    return ok;
  }

  template <typename Groups>
  [[nodiscard]] bool order_satisfies(const std::vector<unsigned>& order,
                                     const Groups& groups) const {
    for (const auto& g : groups) {
      auto state = history_->adt().initial();
      for (unsigned k : order) {
        if (g.vis.test(k)) {
          state = history_->adt().transition(std::move(state),
                                             poset_.update(k));
        }
      }
      for (const auto& obs : g.obs) {
        if (!observation_holds(history_->adt(), state, obs)) return false;
      }
    }
    return true;
  }

  const History<A>* history_;
  UpdatePoset<A> poset_;
  Options opt_;

  std::vector<EventId> topo_;
  VisibilityAssignment assignment_;
  std::map<Bitset64, std::vector<EventId>> groups_;
  std::size_t nodes_ = 0;
  bool exhausted_ = false;
  bool found_ = false;
  VisibilityAssignment witness_;
  std::vector<unsigned> witness_order_;
};

}  // namespace ucw
