// Per-key decomposition of update-consistency checking, plus the
// incremental certificate the offline auditor streams histories into.
//
// The downset solver is exponential in the number of non-commuting
// updates, so whole-history UC checks stop scaling at a few dozen
// updates. Keyed objects (MemoryAdt, the UCStore) have structure the
// solver ignores: updates of distinct registers commute, and queries
// observe a single register. Decomposing by key gives:
//
//   * refutation is compositional — a witness linearization for the
//     whole history restricts to a witness for every key, so any key
//     refuted refutes the whole history;
//   * certification needs one extra step — per-key witnesses chosen
//     independently may be *jointly* unrealizable (per-key last-write
//     constraints can cycle through cross-key program order), so a Yes
//     additionally exhibits one global linearization: pick a candidate
//     final update per constrained key, add "every other update of the
//     key precedes it" edges, and check the combined order is acyclic.
//     Candidate sets are almost always singletons (the value the reads
//     agree on is written by one program-order-maximal update), so the
//     joint check is one toposort; a combinatorial blowup returns
//     Unknown rather than a guess.
//
// This turns million-op audits from hopeless to near-linear: per-key
// work is O(updates of that key), and the joint certificate is one
// pass over the history. See audit/auditor.hpp for the bulk consumer;
// IncrementalKeyCertificate below is the streaming form it builds on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "adt/register.hpp"
#include "clock/timestamp.hpp"
#include "criteria/uc.hpp"
#include "criteria/verdict.hpp"
#include "history/history.hpp"

namespace ucw {

/// Verdict for one key of a decomposed history.
template <UqAdt A>
struct KeyCertificate {
  Verdict uc = Verdict::Unknown;
  Verdict ec = Verdict::Unknown;
  /// How the UC verdict was reached: "no-omega", "stamp-replay",
  /// "downset", "too-large", "divergent", "unexplained-value".
  std::string method;
  std::string detail;
  std::size_t updates = 0;
  std::size_t omega = 0;
};

/// Streaming per-key certificate accumulator: feed one key's updates
/// (with their arbitration stamps and program-order chain) and its
/// ω-observations in any order, then finalize.
///
/// The cheap certificate is the *stamp-order replay*: per-process
/// Lamport stamps extend program order, so if per-chain insertion
/// order agrees with stamp order, replaying updates sorted by stamp is
/// a valid linearization — if its final state satisfies every
/// ω-observation, UC holds, in O(n log n) for any ADT and any size.
/// Crucially this certificate *composes across keys*: stamp order is
/// one global order, so keys certified by it share a single witness
/// linearization. Only when replay fails does the exact downset solver
/// run (≤ 64 updates, within budget); beyond that the answer is an
/// honest Unknown.
template <UqAdt A>
class IncrementalKeyCertificate {
 public:
  explicit IncrementalKeyCertificate(A adt = {}) : adt_(std::move(adt)) {}

  /// `chain` names the program-order chain (e.g. pid<<32 | thread).
  void add_update(std::uint64_t chain, const Stamp& stamp,
                  typename A::Update u) {
    updates_.push_back(UpdateRec{stamp, chain, std::move(u)});
  }

  void add_omega(typename A::QueryIn qi, typename A::QueryOut qo) {
    omega_.emplace_back(std::move(qi), std::move(qo));
  }

  [[nodiscard]] std::size_t updates() const { return updates_.size(); }
  [[nodiscard]] std::size_t omega_count() const { return omega_.size(); }

  [[nodiscard]] KeyCertificate<A> finalize(ExploreBudget budget = {}) const {
    KeyCertificate<A> cert;
    cert.updates = updates_.size();
    cert.omega = omega_.size();

    if constexpr (HasSatisfyingState<A>) {
      cert.ec = adt_.satisfying_state(omega_).has_value() ? Verdict::Yes
                                                          : Verdict::No;
    } else {
      cert.ec = omega_.empty() ? Verdict::Yes : Verdict::Unknown;
    }

    if (omega_.empty()) {
      cert.uc = Verdict::Yes;
      cert.method = "no-omega";
      return cert;
    }

    // Stamp-order replay certificate.
    std::vector<UpdateRec> sorted = updates_;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const UpdateRec& a, const UpdateRec& b) {
                       return a.stamp < b.stamp;
                     });
    if (chains_monotone()) {
      typename A::State s = adt_.initial();
      for (const auto& u : sorted) s = adt_.transition(s, u.update);
      bool all = true;
      for (const auto& obs : omega_) {
        if (!observation_holds(adt_, s, obs)) {
          all = false;
          break;
        }
      }
      if (all) {
        cert.uc = Verdict::Yes;
        cert.method = "stamp-replay";
        cert.detail = "stamp-order replay converges to " +
                      adt_.format_state(s);
        return cert;
      }
    }

    // Exact fallback: the downset solver over this key alone.
    if (updates_.size() > 64) {
      cert.uc = Verdict::Unknown;
      cert.method = "too-large";
      cert.detail = "replay certificate failed and " +
                    std::to_string(updates_.size()) +
                    " updates exceed the exact solver's span";
      return cert;
    }
    const CheckResult r = check_uc(build_history(), budget);
    cert.uc = r.verdict;
    cert.method = "downset";
    cert.detail = r.explanation;
    return cert;
  }

 private:
  struct UpdateRec {
    Stamp stamp;
    std::uint64_t chain;
    typename A::Update update;
  };

  /// Per chain, insertion order must agree with stamp order for the
  /// replay linearization to extend program order.
  [[nodiscard]] bool chains_monotone() const {
    std::unordered_map<std::uint64_t, Stamp> last;
    for (const auto& u : updates_) {
      auto [it, fresh] = last.try_emplace(u.chain, u.stamp);
      if (!fresh) {
        if (!(it->second < u.stamp)) return false;
        it->second = u.stamp;
      }
    }
    return true;
  }

  /// Key-local history: one chain per recorded chain id, each
  /// ω-observation its own (trivially chain-maximal) singleton chain.
  [[nodiscard]] History<A> build_history() const {
    std::unordered_map<std::uint64_t, ProcessId> chain_ids;
    std::vector<Event<A>> events;
    std::vector<std::uint32_t> next_seq;
    for (const auto& u : updates_) {
      auto [it, fresh] =
          chain_ids.try_emplace(u.chain, static_cast<ProcessId>(chain_ids.size()));
      if (fresh) next_seq.push_back(0);
      Event<A> e;
      e.id = static_cast<EventId>(events.size());
      e.pid = it->second;
      e.seq = next_seq[it->second]++;
      e.label = u.update;
      events.push_back(std::move(e));
    }
    ProcessId pid = static_cast<ProcessId>(chain_ids.size());
    for (const auto& obs : omega_) {
      Event<A> e;
      e.id = static_cast<EventId>(events.size());
      e.pid = pid++;
      e.seq = 0;
      e.label = obs;
      e.omega = true;
      events.push_back(std::move(e));
    }
    return History<A>(adt_, std::move(events), pid);
  }

  A adt_;
  std::vector<UpdateRec> updates_;
  std::vector<QueryObservation<A>> omega_;
};

/// UC check for shared-memory histories via per-key decomposition.
///
/// Exact on both sides: No when some key is separately unsatisfiable
/// or every per-key choice of final writes cycles through program
/// order; Yes only with an exhibited global witness (a topological
/// order of program order + chosen last-write constraints). Unknown
/// only when the candidate-combination budget runs out.
template <typename K, typename V>
[[nodiscard]] CheckResult check_uc_per_key(
    const History<MemoryAdt<K, V>>& h,
    std::size_t max_witness_combinations = 4096) {
  CheckResult result;
  if (!h.has_omega()) {
    result.verdict = Verdict::Yes;
    result.explanation = "finite history: every query is removable";
    return result;
  }

  // Per key: the value its ω-reads require, and which updates wrote it.
  struct KeyInfo {
    std::vector<EventId> updates;
    bool constrained = false;
    bool conflicting = false;
    V required{};
  };
  std::map<K, KeyInfo> keys;
  for (EventId id : h.update_ids()) {
    keys[h.event(id).update().reg].updates.push_back(id);
  }
  for (EventId id : h.query_ids()) {
    const auto& e = h.event(id);
    if (!e.omega) continue;
    const auto& [qi, qo] = e.query();
    KeyInfo& info = keys[qi.reg];
    if (info.constrained && !(info.required == qo)) info.conflicting = true;
    info.constrained = true;
    info.required = qo;
  }

  const V v0 = h.adt().v0;
  std::vector<std::pair<K, std::vector<EventId>>> candidate_sets;
  for (auto& [key, info] : keys) {
    if (info.conflicting) {
      result.verdict = Verdict::No;
      result.explanation = "key " + format_value(key) +
                           ": infinitely-repeated reads disagree";
      return result;
    }
    if (!info.constrained) continue;
    if (info.updates.empty()) {
      if (info.required == v0) continue;
      result.verdict = Verdict::No;
      result.explanation = "key " + format_value(key) + ": read " +
                           format_value(info.required) +
                           " but no update wrote it";
      return result;
    }
    // Candidates: updates writing the required value with no same-key
    // program-order successor (anything else can never be last).
    std::vector<EventId> candidates;
    for (EventId u : info.updates) {
      if (!(h.event(u).update().value == info.required)) continue;
      bool maximal = true;
      for (EventId v : info.updates) {
        if (v != u && h.prog_before(u, v)) {
          maximal = false;
          break;
        }
      }
      if (maximal) candidates.push_back(u);
    }
    if (candidates.empty()) {
      result.verdict = Verdict::No;
      result.explanation =
          "key " + format_value(key) + ": no program-order-maximal update "
          "writes the value " + format_value(info.required) +
          " the repeated reads observe";
      return result;
    }
    candidate_sets.emplace_back(key, std::move(candidates));
  }

  // Joint certificate: some choice of final write per key must embed in
  // one linearization — program order plus "every other same-key update
  // precedes the chosen one" must stay acyclic.
  const auto acyclic = [&](const std::vector<EventId>& chosen) {
    std::vector<std::vector<EventId>> succ(h.size());
    std::vector<std::size_t> indeg(h.size(), 0);
    for (ProcessId p = 0; p < h.process_count(); ++p) {
      const auto& chain = h.chain(p);
      for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        succ[chain[i]].push_back(chain[i + 1]);
        ++indeg[chain[i + 1]];
      }
    }
    for (const auto& [a, b] : h.extra_edges()) {
      succ[a].push_back(b);
      ++indeg[b];
    }
    for (std::size_t s = 0; s < chosen.size(); ++s) {
      for (EventId v : keys[candidate_sets[s].first].updates) {
        if (v == chosen[s]) continue;
        succ[v].push_back(chosen[s]);
        ++indeg[chosen[s]];
      }
    }
    std::vector<EventId> ready;
    for (EventId id = 0; id < h.size(); ++id) {
      if (indeg[id] == 0) ready.push_back(id);
    }
    std::size_t seen = 0;
    while (!ready.empty()) {
      const EventId id = ready.back();
      ready.pop_back();
      ++seen;
      for (EventId nxt : succ[id]) {
        if (--indeg[nxt] == 0) ready.push_back(nxt);
      }
    }
    return seen == h.size();
  };

  std::vector<std::size_t> pick(candidate_sets.size(), 0);
  std::vector<EventId> chosen(candidate_sets.size());
  std::size_t tried = 0;
  while (true) {
    for (std::size_t s = 0; s < candidate_sets.size(); ++s) {
      chosen[s] = candidate_sets[s].second[pick[s]];
    }
    if (++tried > max_witness_combinations) {
      result.verdict = Verdict::Unknown;
      result.explanation =
          "per-key certificates hold but the joint-witness search "
          "exceeded its combination budget";
      return result;
    }
    if (acyclic(chosen)) {
      result.verdict = Verdict::Yes;
      result.explanation =
          "per-key certificates compose: a topological order of program "
          "order + " +
          std::to_string(candidate_sets.size()) +
          " last-write constraints is a witness linearization";
      return result;
    }
    // Next combination (odometer).
    std::size_t s = 0;
    while (s < candidate_sets.size() &&
           ++pick[s] == candidate_sets[s].second.size()) {
      pick[s++] = 0;
    }
    if (s == candidate_sets.size()) break;
  }
  result.verdict = Verdict::No;
  result.explanation =
      "every per-key choice of final writes cycles through cross-key "
      "program order — no single linearization satisfies all repeated "
      "reads";
  return result;
}

}  // namespace ucw
