// Certificate validation: polynomial-time consistency checking for
// histories produced by instrumented runs.
//
// The exact SEC/SUC solvers search for a visibility witness; an
// *implementation under test doesn't need to be searched* — it knows its
// witness. Algorithm 1 replicas record, for every event, the set of
// updates in their log at that moment (the visibility relation induced by
// message delivery) and the Lamport stamp (the total order ≤). Validating
// a certificate against Definitions 6/9/10 is then a linear scan plus one
// log replay per query — this is what lets the property suites check
// thousands of randomized multi-process runs.
#pragma once

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "adt/set.hpp"
#include "clock/timestamp.hpp"
#include "criteria/verdict.hpp"
#include "history/history.hpp"

namespace ucw {

/// Witness data recorded by an instrumented run, indexed by event id.
struct RunCertificate {
  /// Lamport stamp of each event (updates: the broadcast timestamp;
  /// queries: the clock at issue time). Must strictly increase along
  /// every process chain and be globally unique.
  std::vector<Stamp> stamps;
  /// For each event, the update events in the replica's log when the
  /// event executed (its visible set V(e)); must include the event
  /// itself for updates.
  std::vector<std::vector<EventId>> visible;
};

namespace detail {

/// Structural checks shared by the SUC and insert-wins validators:
/// stamps total + chain-monotone (≤ ⊇ vis ⊇ ↦), visibility reflexive,
/// ↦-inclusive, growth-monotone, stamp-consistent (vis ⊆ ≤), and full at
/// ω-events (eventual delivery).
template <UqAdt A>
[[nodiscard]] std::optional<std::string> structural_violation(
    const History<A>& h, const RunCertificate& cert) {
  const std::size_t n = h.size();
  if (cert.stamps.size() != n || cert.visible.size() != n) {
    return "certificate arity mismatch";
  }
  // Global stamp uniqueness.
  std::vector<Stamp> sorted = cert.stamps;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return "duplicate stamps: the arbitration order is not total";
  }
  // Visible sets as sorted vectors for subset tests.
  std::vector<std::vector<EventId>> vis(n);
  for (EventId e = 0; e < n; ++e) {
    vis[e] = cert.visible[e];
    std::sort(vis[e].begin(), vis[e].end());
    for (EventId u : vis[e]) {
      if (u >= n || !h.event(u).is_update()) {
        return "visible set of event " + std::to_string(e) +
               " names a non-update event";
      }
      if (!(cert.stamps[u] < cert.stamps[e]) && u != e) {
        return "event " + std::to_string(e) +
               " sees an update with a larger stamp (vis ⊄ ≤)";
      }
    }
    if (h.event(e).is_update() &&
        !std::binary_search(vis[e].begin(), vis[e].end(), e)) {
      return "update " + std::to_string(e) + " does not see itself";
    }
  }
  for (ProcessId p = 0; p < h.process_count(); ++p) {
    const auto& chain = h.chain(p);
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      if (!(cert.stamps[chain[i]] < cert.stamps[chain[i + 1]])) {
        return "stamps not increasing along chain p" + std::to_string(p);
      }
      if (!std::includes(vis[chain[i + 1]].begin(), vis[chain[i + 1]].end(),
                         vis[chain[i]].begin(), vis[chain[i]].end())) {
        return "visibility shrinks along chain p" + std::to_string(p) +
               " (growth violated)";
      }
    }
  }
  // Contains ↦: every update before e on e's own chain must be visible
  // (cross-chain ↦ follows from growth over the recorded sets).
  for (EventId e = 0; e < n; ++e) {
    for (EventId u : h.update_ids()) {
      if (u != e && h.prog_before(u, e) &&
          !std::binary_search(vis[e].begin(), vis[e].end(), u)) {
        return "event " + std::to_string(e) +
               " does not see program-order predecessor update " +
               std::to_string(u);
      }
    }
  }
  // Eventual delivery: ω-events see every update.
  for (EventId e = 0; e < n; ++e) {
    if (h.event(e).omega && vis[e].size() != h.update_ids().size()) {
      return "omega event " + std::to_string(e) +
             " misses updates (eventual delivery violated)";
    }
  }
  return std::nullopt;
}

}  // namespace detail

/// Validates a run against Definition 9 (strong update consistency):
/// structural checks plus, for every query, replaying its visible set in
/// stamp order must reproduce the recorded output.
template <UqAdt A>
[[nodiscard]] CheckResult validate_suc_certificate(const History<A>& h,
                                                   const RunCertificate& cert) {
  CheckResult result;
  if (auto err = detail::structural_violation(h, cert)) {
    result.verdict = Verdict::No;
    result.explanation = *err;
    return result;
  }
  for (EventId q : h.query_ids()) {
    std::vector<EventId> order = cert.visible[q];
    std::sort(order.begin(), order.end(), [&](EventId a, EventId b) {
      return cert.stamps[a] < cert.stamps[b];
    });
    auto state = h.adt().initial();
    for (EventId u : order) {
      state = h.adt().transition(std::move(state), h.event(u).update());
    }
    const auto& obs = h.event(q).query();
    if (!observation_holds(h.adt(), state, obs)) {
      result.verdict = Verdict::No;
      result.explanation =
          "query event " + std::to_string(q) + " returned " +
          h.adt().format_query(obs.first, obs.second) +
          " but its visible log replays to " + h.adt().format_state(state);
      return result;
    }
  }
  result.verdict = Verdict::Yes;
  result.explanation = "certificate satisfies Definition 9";
  return result;
}

/// Validates a set-object run against Definition 10 (SEC for the
/// Insert-wins set): structural checks, strong convergence (equal visible
/// sets ⇒ equal outputs), and the insert-wins membership rule evaluated
/// with u vis u′ ⟺ u ∈ V(u′).
template <typename V>
[[nodiscard]] CheckResult validate_insert_wins_certificate(
    const History<SetAdt<V>>& h, const RunCertificate& cert) {
  CheckResult result;
  if (auto err = detail::structural_violation(h, cert)) {
    result.verdict = Verdict::No;
    result.explanation = *err;
    return result;
  }

  // Strong convergence: group queries by visible set.
  std::map<std::vector<EventId>, std::set<V>> group_output;
  for (EventId q : h.query_ids()) {
    std::vector<EventId> key = cert.visible[q];
    std::sort(key.begin(), key.end());
    const auto& out = h.event(q).query().second;
    auto [it, fresh] = group_output.emplace(std::move(key), out);
    if (!fresh && !(it->second == out)) {
      result.verdict = Verdict::No;
      result.explanation = "two queries with identical visible sets "
                           "returned different values";
      return result;
    }
  }

  // Insert-wins rule per query.
  for (EventId q : h.query_ids()) {
    std::vector<EventId> vis_q = cert.visible[q];
    std::sort(vis_q.begin(), vis_q.end());
    const auto& out = h.event(q).query().second;

    std::set<V> support;
    for (EventId u : h.update_ids()) {
      const auto& upd = h.event(u).update();
      if (const auto* ins = std::get_if<SetInsert<V>>(&upd)) {
        support.insert(ins->value);
      } else {
        support.insert(std::get<SetDelete<V>>(upd).value);
      }
    }
    for (const V& x : out) support.insert(x);

    for (const V& x : support) {
      bool expected = false;
      for (EventId a : vis_q) {
        const auto* ins = std::get_if<SetInsert<V>>(&h.event(a).update());
        if (ins == nullptr || !(ins->value == x)) continue;
        bool superseded = false;
        for (EventId b : vis_q) {
          const auto* del = std::get_if<SetDelete<V>>(&h.event(b).update());
          if (del == nullptr || !(del->value == x)) continue;
          const auto& vb = cert.visible[b];
          if (std::find(vb.begin(), vb.end(), a) != vb.end()) {
            superseded = true;
            break;
          }
        }
        if (!superseded) {
          expected = true;
          break;
        }
      }
      if (expected != (out.count(x) > 0)) {
        result.verdict = Verdict::No;
        result.explanation =
            "query event " + std::to_string(q) + " violates insert-wins on " +
            format_value(x);
        return result;
      }
    }
  }
  result.verdict = Verdict::Yes;
  result.explanation = "certificate satisfies Definition 10";
  return result;
}

}  // namespace ucw
