// Sequential consistency checker.
//
// The paper's positioning (§VIII): update consistency is "stronger than
// eventual consistency and weaker than sequential consistency". SC
// demands one linearization of *all* events — updates and every query,
// none removable — consistent with the program order and recognized by
// the ADT. This checker makes the upper end of that hierarchy executable
// so the lattice experiments can show SC ⫋ SUC ⫋ UC ⫋ EC on real
// populations of histories.
//
// Implemented on the multi-chain downset DP (lin/multichain.hpp); exact
// for checker-scale histories, Unknown beyond budget.
#pragma once

#include "criteria/verdict.hpp"
#include "history/history.hpp"
#include "lin/multichain.hpp"

namespace ucw {

template <UqAdt A>
[[nodiscard]] CheckResult check_sc(const History<A>& h,
                                   ExploreBudget budget = {}) {
  CheckResult result;
  MultiChainLinearizer<A> lin(h, budget);
  auto ok = lin.whole_history_linearizes();
  result.stats = lin.stats();
  if (!ok.has_value()) {
    result.verdict = Verdict::Unknown;
    result.explanation = "whole-history exploration budget exceeded";
  } else if (*ok) {
    result.verdict = Verdict::Yes;
    result.explanation =
        "a linearization of every event (queries included) is recognized";
  } else {
    result.verdict = Verdict::No;
    result.explanation =
        "no linearization of all events is recognized by the ADT";
  }
  return result;
}

}  // namespace ucw
