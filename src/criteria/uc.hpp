// Update consistency checker (paper, Definition 8).
//
// H is UC when U_H is infinite, or a finite set of queries Q' can be
// removed so that a linearization of the rest is recognized by the ADT.
// With the finite-plus-ω encoding every finite query is removable (they
// form a finite set), and ω-queries cannot be removed. An ω-query stands
// for infinitely many trailing copies, and U_H is finite, so all but
// finitely many copies follow every update: the reduced question is
//
//   does some linearization of the updates, consistent with the program
//   order, reach a final state satisfying every ω-query?
//
// "⇒" any recognized linearization puts the updates in such an order;
// "⇐" given such an order, schedule all updates first (respecting ↦ —
// possible because ω-queries are chain-maximal) and append the ω copies.
// The downset DP answers it without enumerating the n! orders.
#pragma once

#include <vector>

#include "criteria/verdict.hpp"
#include "history/history.hpp"
#include "lin/downset.hpp"

namespace ucw {

template <UqAdt A>
[[nodiscard]] CheckResult check_uc(const History<A>& h,
                                   ExploreBudget budget = {}) {
  CheckResult result;
  if (!h.has_omega()) {
    result.verdict = Verdict::Yes;
    result.explanation =
        "finite history: remove all queries; any topological order of the "
        "updates is a recognized linearization";
    return result;
  }

  std::vector<QueryObservation<A>> omega_obs;
  for (EventId id : h.query_ids()) {
    if (h.event(id).omega) omega_obs.push_back(h.event(id).query());
  }

  DownsetExplorer<A> explorer(h, budget);
  const auto& finals = explorer.final_states();
  result.stats = explorer.stats();
  if (explorer.stats().budget_exceeded) {
    result.verdict = Verdict::Unknown;
    result.explanation = "exploration budget exceeded";
    return result;
  }

  for (const auto& s : finals) {
    bool all = true;
    for (const auto& obs : omega_obs) {
      if (!observation_holds(h.adt(), s, obs)) {
        all = false;
        break;
      }
    }
    if (all) {
      result.verdict = Verdict::Yes;
      result.explanation =
          "some update linearization converges to " + h.adt().format_state(s);
      return result;
    }
  }
  result.verdict = Verdict::No;
  result.explanation =
      "none of the " + std::to_string(finals.size()) +
      " reachable final states satisfies the infinitely-repeated queries";
  return result;
}

/// Convenience used by the run harness: is `converged` explainable as a
/// linearization of the recorded updates? (UC where the final reads are
/// the ω-queries.)
template <UqAdt A>
[[nodiscard]] CheckResult check_uc_final_state(
    const History<A>& h, const typename A::State& converged,
    ExploreBudget budget = {}) {
  CheckResult result;
  DownsetExplorer<A> explorer(h, budget);
  const auto& finals = explorer.final_states();
  result.stats = explorer.stats();
  if (explorer.stats().budget_exceeded) {
    result.verdict = Verdict::Unknown;
    result.explanation = "exploration budget exceeded";
    return result;
  }
  if (finals.count(converged) > 0) {
    result.verdict = Verdict::Yes;
    result.explanation = "converged state is reachable by a linearization";
  } else {
    result.verdict = Verdict::No;
    result.explanation =
        "converged state " + h.adt().format_state(converged) +
        " is not reachable by any update linearization (" +
        std::to_string(finals.size()) + " reachable states)";
  }
  return result;
}

}  // namespace ucw
