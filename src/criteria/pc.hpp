// Pipelined consistency checker (paper, Definition 7).
//
// H is PC when, for every maximal chain p, some linearization of
// H_{U_H ∪ p} — all updates of the history plus p's own events, ordered
// consistently with the program order — is recognized by the ADT. PRAM
// generalized beyond memory: each process must be able to explain its own
// reads against everybody's writes, with no agreement across processes.
#pragma once

#include <string>

#include "criteria/verdict.hpp"
#include "history/history.hpp"
#include "lin/chain.hpp"

namespace ucw {

template <UqAdt A>
[[nodiscard]] CheckResult check_pc(const History<A>& h,
                                   ExploreBudget budget = {}) {
  CheckResult result;
  ChainLinearizer<A> linearizer(h, budget);
  bool unknown = false;
  for (ProcessId p = 0; p < h.process_count(); ++p) {
    if (h.chain(p).empty()) continue;
    auto ok = linearizer.chain_has_linearization(p);
    result.stats.downsets_visited += linearizer.stats().downsets_visited;
    result.stats.states_stored += linearizer.stats().states_stored;
    result.stats.transitions += linearizer.stats().transitions;
    if (!ok.has_value()) {
      unknown = true;
      continue;
    }
    if (!*ok) {
      result.verdict = Verdict::No;
      result.explanation = "process p" + std::to_string(p) +
                           " has no linearization of its events against all "
                           "updates";
      return result;
    }
  }
  if (unknown) {
    result.verdict = Verdict::Unknown;
    result.explanation = "exploration budget exceeded on some chain";
    result.stats.budget_exceeded = true;
  } else {
    result.verdict = Verdict::Yes;
    result.explanation = "every process chain linearizes against all updates";
  }
  return result;
}

}  // namespace ucw
