// Eventual consistency checker (paper, Definition 5).
//
// H is EC when U_H is infinite, or some state s ∈ S disagrees with only
// finitely many queries. With our finite-plus-ω encoding:
//   * a history without ω-events is trivially EC (all queries form a
//     finite set, so any state works);
//   * otherwise exactly the ω-queries must agree with s — each stands for
//     infinitely many copies, while every finite query may be charged to
//     the "finitely many" allowance.
//
// Note s ranges over *all* states, reachable or not (the paper stresses
// EC ignores the sequential specification). ADTs exposing
// satisfying_state decide this exactly; otherwise we fall back to the
// reachable states as a sound witness set and answer Unknown when none
// fits but outputs do not outright conflict.
#pragma once

#include <vector>

#include "criteria/verdict.hpp"
#include "history/history.hpp"
#include "lin/downset.hpp"

namespace ucw {

template <UqAdt A>
[[nodiscard]] CheckResult check_ec(const History<A>& h,
                                   ExploreBudget budget = {}) {
  CheckResult result;
  if (!h.has_omega()) {
    result.verdict = Verdict::Yes;
    result.explanation =
        "finite history: every state disagrees with only finitely many "
        "queries";
    return result;
  }

  std::vector<QueryObservation<A>> omega_obs;
  for (EventId id : h.query_ids()) {
    if (h.event(id).omega) omega_obs.push_back(h.event(id).query());
  }

  if constexpr (HasSatisfyingState<A>) {
    auto s = h.adt().satisfying_state(omega_obs);
    if (s.has_value()) {
      result.verdict = Verdict::Yes;
      result.explanation =
          "converged state " + h.adt().format_state(*s) +
          " satisfies every infinitely-repeated query";
    } else {
      result.verdict = Verdict::No;
      result.explanation =
          "no single state satisfies all infinitely-repeated queries";
    }
    return result;
  } else {
    // Sound fallback: a reachable final state satisfying all ω-queries
    // witnesses EC; absence is inconclusive because EC admits arbitrary
    // states.
    DownsetExplorer<A> explorer(h, budget);
    const auto& finals = explorer.final_states();
    result.stats = explorer.stats();
    if (!explorer.stats().budget_exceeded) {
      for (const auto& s : finals) {
        bool all = true;
        for (const auto& obs : omega_obs) {
          if (!observation_holds(h.adt(), s, obs)) {
            all = false;
            break;
          }
        }
        if (all) {
          result.verdict = Verdict::Yes;
          result.explanation = "reachable state " + h.adt().format_state(s) +
                               " satisfies every infinitely-repeated query";
          return result;
        }
      }
    }
    // Same query input answered with two different outputs forever can
    // never be satisfied by any single state: G is a function.
    for (std::size_t i = 0; i < omega_obs.size(); ++i) {
      for (std::size_t j = i + 1; j < omega_obs.size(); ++j) {
        if (omega_obs[i].first == omega_obs[j].first &&
            !(omega_obs[i].second == omega_obs[j].second)) {
          result.verdict = Verdict::No;
          result.explanation =
              "two infinitely-repeated queries with the same input return "
              "different values";
          return result;
        }
      }
    }
    result.verdict = Verdict::Unknown;
    result.explanation =
        "no reachable witness and the ADT exposes no satisfying_state";
    return result;
  }
}

}  // namespace ucw
