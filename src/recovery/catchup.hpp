// Catch-up: snapshot codec + the joiner's sync session state machine.
//
// The protocol (driven by StoreCore):
//
//   joiner                         donor
//     | -- SyncRequest (p2p) -------> |   collect_garbage(), then for
//     |                               |   each shard encode base+suffix
//     | <-- ShardSnapshot × shards -- |   (p2p, one message per shard)
//     |  install_base + replay suffix |
//     |  adopt donor rows/clock       |
//     |  guard live streams ........  |   (resume-live-delivery check)
//
// Live delivery never pauses: envelopes arriving during the sync are
// applied immediately (per-key logs are set-unions, order-insensitive)
// and whatever the snapshot already covered is absorbed as duplicates.
// The delicate part is the opposite direction — an envelope broadcast
// while the joiner was down is *dropped* at the joiner, and may still be
// in flight towards the donor when it serves, so neither party holds it.
// The session therefore guards every sender's stream: under FIFO links
// the donor's coverage (epoch, seq) and the seq of the first envelope
// the joiner receives live decide exactly whether the prefix was covered
// or a gap exists, and a gap triggers a re-sync (the missing envelopes
// reach the donor eventually — reliable broadcast — so retries
// terminate). Once every stream is verified the session retires and the
// replica is provably caught up in O(live state + unstable suffix).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/replica.hpp"
#include "recovery/snapshot.hpp"
#include "store/shard.hpp"

namespace ucw {

// ----- snapshot codec -------------------------------------------------

/// Serializes one shard's compacted state, restricted to the keys
/// `include` admits (the delta codec's hook: the shard engine passes its
/// dirty-set check; pass always-true for a full snapshot). The caller
/// compacts first (collect_garbage) so the suffixes carry only the
/// unstable window. `keys_total` records the live-key count regardless
/// of the filter, so installers and tests can see how much a delta
/// skipped.
template <UqAdt A, typename Key, typename IncludeFn>
[[nodiscard]] ShardSnapshot<A, Key> encode_shard_snapshot(
    StoreShard<A, Key>& shard, std::size_t shard_index,
    std::size_t shard_count, IncludeFn&& include) {
  ShardSnapshot<A, Key> snap;
  snap.shard_index = shard_index;
  snap.shard_count = shard_count;
  snap.keys_total = shard.keys_live();
  snap.keys.reserve(shard.keys_live());
  shard.for_each([&](const Key& k, ReplayReplica<A>& r) {
    if (!include(k)) return;
    KeySnapshot<A, Key> ks;
    ks.key = k;
    ks.base = r.log().base_state();
    ks.floor = r.log().floor();
    ks.suffix.reserve(r.log().size());
    for (const auto& e : r.log().entries()) {
      ks.suffix.push_back(SnapshotLogEntry<A>{e.stamp, e.update});
    }
    snap.keys.push_back(std::move(ks));
  });
  shard.note_snapshot_exported();
  return snap;
}

/// Full snapshot: every live key of the shard.
template <UqAdt A, typename Key>
[[nodiscard]] ShardSnapshot<A, Key> encode_shard_snapshot(
    StoreShard<A, Key>& shard, std::size_t shard_index,
    std::size_t shard_count) {
  return encode_shard_snapshot(shard, shard_index, shard_count,
                               [](const Key&) { return true; });
}

/// Installs one key's snapshot into a replica: adopt the donor base,
/// then replay the suffix through apply() (overlaps with entries the
/// replica picked up live are absorbed as duplicates). Returns suffix
/// entries replayed. Base-without-suffix is NOT a valid install — the
/// suffix holds exactly the entries the donor had not yet folded, and
/// nothing else will redeliver them (the `install_skips_suffix` corpus
/// mutant is this function with the loop deleted, and the auditor
/// refutes it).
template <UqAdt A, typename Key>
std::size_t install_key_snapshot(ReplayReplica<A>& rep,
                                 const KeySnapshot<A, Key>& ks) {
  (void)rep.install_base(ks.base, ks.floor);
  for (const auto& e : ks.suffix) {
    rep.apply(e.stamp.pid, UpdateMessage<A>{e.stamp, e.update, {}});
  }
  return ks.suffix.size();
}

// ----- per-sender seq coverage ----------------------------------------

/// Which seqs of one sender's (single-epoch) envelope stream this store
/// provably holds — received live, or covered by an installed snapshot /
/// anti-entropy delta. Kept as sorted disjoint segments: per-link FIFO
/// makes live arrivals in-order, so a segment boundary appears exactly
/// where a drop-mode partition discarded envelopes, and one partition
/// episode costs one segment. `prefix()` — the largest X with [0, X]
/// fully covered — is the only claim the recovery protocols may make to
/// peers: under drops, "largest seq seen" over-claims (the classic FIFO
/// shortcut), and an over-claimed coverage row would let a catching-up
/// peer verify a stream whose gap entries nobody shipped it — exactly
/// the `coverage_claims_last_seq` corpus mutant, which swaps prefix()
/// for last() at the claim site and loses the gap entries for good.
class SeqCoverage {
 public:
  /// One seq received live (duplicates and overlaps are fine).
  void add(std::uint64_t seq);
  /// [0, hi] proven covered wholesale (snapshot install, AE completion).
  void add_prefix(std::uint64_t hi);
  /// Forget everything (the sender restarted under a new epoch).
  void reset();

  [[nodiscard]] bool any() const { return !segs_.empty(); }
  /// Whether seq 0 is covered (a prefix claim exists at all).
  [[nodiscard]] bool has_prefix() const {
    return !segs_.empty() && segs_.front().first == 0;
  }
  /// Largest X with [0, X] covered; only meaningful when has_prefix().
  [[nodiscard]] std::uint64_t prefix() const { return segs_.front().second; }
  /// Largest seq covered by any segment.
  [[nodiscard]] std::uint64_t last() const { return segs_.back().second; }
  /// No holes: one segment covering [0, last()].
  [[nodiscard]] bool contiguous() const {
    return segs_.empty() || (segs_.size() == 1 && segs_[0].first == 0);
  }
  [[nodiscard]] std::size_t segments() const { return segs_.size(); }

 private:
  /// Sorted, disjoint, non-adjacent [lo, hi] ranges.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> segs_;
};

// ----- sync session ---------------------------------------------------

/// What the joiner has observed of one sender's live stream since it
/// (re)started: the incarnation and the seq of its first envelope.
struct PeerStreamView {
  bool any = false;
  std::uint64_t epoch = 0;
  std::uint64_t first_seq = 0;
};

/// The joiner's side of one catch-up: which shards have been installed,
/// the donor's stream coverage, and which live streams are verified
/// gap-free. Untemplated — it only sees bookkeeping, never payloads.
class CatchupSession {
 public:
  /// Opens a new sync round (the first call, and every retry). A round
  /// expects one full batch of shard snapshots; snapshots from earlier
  /// rounds still install their data but no longer satisfy the session,
  /// so it cannot retire on a stale batch and let GC fold ahead of the
  /// snapshots still in flight. Returns the new round token (echoed by
  /// the donor on every snapshot of the batch).
  std::uint64_t begin(ProcessId donor, std::size_t n_shards,
                      std::size_t n_processes);
  void abandon();

  [[nodiscard]] bool active() const { return active_; }
  /// Still missing at least one ShardSnapshot of the current round.
  [[nodiscard]] bool awaiting() const { return awaiting_; }
  [[nodiscard]] ProcessId donor() const { return donor_; }
  [[nodiscard]] std::uint64_t round() const { return round_; }

  /// Returns true if this shard index was not installed before.
  bool note_shard_installed(std::size_t shard_index);
  /// Folds a snapshot's coverage vector in (newest epoch/seq wins).
  void merge_coverage(const std::vector<StreamCoverage>& coverage);
  /// Re-checks every unverified stream against the coverage; returns
  /// true when a gap was found and the caller must request a re-sync.
  bool reevaluate(ProcessId self, const std::vector<PeerStreamView>& peers);
  /// Retires the session (returns true) once all shards are installed
  /// and every stream is verified.
  bool try_retire();
  /// Whether `q`'s stream has been proven gap-free this session.
  [[nodiscard]] bool verified(ProcessId q) const {
    return q < verified_.size() && verified_[q];
  }

  /// The merged donor coverage of the session (what the installed
  /// snapshots provably cover of each sender's stream). Read at retire
  /// time to seed the store's per-sender SeqCoverage — the proof that
  /// the pre-join prefix of every stream needs no anti-entropy.
  [[nodiscard]] const std::vector<StreamCoverage>& coverage() const {
    return coverage_;
  }

  /// Retry pacing: progress() is bumped by installs; a flush tick where
  /// the session is active but progress stalled re-requests the sync.
  [[nodiscard]] std::uint64_t progress() const { return progress_; }
  [[nodiscard]] bool stalled_since(std::uint64_t progress_mark) const;

 private:
  bool active_ = false;
  bool awaiting_ = false;
  std::uint64_t round_ = 0;
  ProcessId donor_ = 0;
  std::vector<bool> installed_;
  std::size_t installed_count_ = 0;
  std::vector<StreamCoverage> coverage_;
  std::vector<bool> verified_;
  std::uint64_t progress_ = 0;
};

}  // namespace ucw
