// Store-level stability: one matrix clock per *process*, not per key.
//
// PR 1's UCStore inherited Algorithm 1's per-object stability tracking,
// which a million-key store cannot afford: one MatrixClock per key, and
// a floor that only moves for keys every process happens to touch. This
// tracker hoists the idea to the store: every keyed replica of a process
// stamps from one store-wide Lamport clock, every BatchEnvelope
// piggybacks the sender's clock as an ack, and the receiver keeps a
// single knowledge vector "the largest clock I have received from each
// process". Under FIFO links that is exactly "I have received everything
// process j ever broadcast up to rows[j]" — across the *whole keyspace*,
// because the shared clock makes a process's stamps monotone over its
// entire envelope stream. The floor (minimum over live rows) is then a
// store-wide fold point: StoreCore pushes it down into every live
// ReplayReplica on the flush tick and the per-key logs compact together.
//
// Direct knowledge only: rows are raised by acks received first-hand.
// Gossiped rows must never raise the floor — they say nothing about what
// is still in flight towards *us* (see core/replica.hpp). The one
// exception is adopt(): a replica installing a catch-up snapshot may
// merge the donor's rows, because the snapshot it just installed covers
// every entry below them (anything older arriving later is, provably, a
// redelivery the per-key logs absorb).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "clock/matrix_clock.hpp"
#include "clock/timestamp.hpp"

namespace ucw {

class StoreStabilityTracker {
 public:
  StoreStabilityTracker(ProcessId self, std::size_t n_processes);

  [[nodiscard]] ProcessId self() const;
  [[nodiscard]] std::size_t size() const;

  /// The local store clock reached `t` (called on every keyed update).
  void advance_self(LogicalTime t);

  /// An envelope from `from` carried ack clock `t`: everything `from`
  /// ever broadcast with a stamp <= t has now been received here (FIFO).
  /// Hearing from a process also proves it alive again.
  void observe_ack(ProcessId from, LogicalTime t);

  /// Merges a catch-up donor's rows — sound only at snapshot install
  /// time (the installed snapshot covers everything below them).
  void adopt(const std::vector<LogicalTime>& donor_rows);

  /// Failure-detector verdicts: a crashed process stops pinning the
  /// floor, but may only be declared once nothing it sent can still be
  /// in flight. Alive clears a previous verdict (restart).
  void set_crashed(ProcessId p, bool crashed);
  [[nodiscard]] bool crashed(ProcessId p) const;

  /// Largest clock every live process is known to have passed: every
  /// entry stamped at or below it is stable store-wide and can be
  /// folded out of the per-key logs.
  [[nodiscard]] LogicalTime floor() const;

  /// How far the local clock has run ahead of the floor — the length of
  /// the unstable window (what a snapshot would ship as suffixes).
  [[nodiscard]] LogicalTime lag() const;

  [[nodiscard]] const std::vector<LogicalTime>& rows() const;
  [[nodiscard]] std::string to_string() const;

 private:
  MatrixClock clock_;
};

}  // namespace ucw
