// Umbrella header for the recovery subsystem (store-level stability,
// snapshot shipping, catch-up).
#pragma once

#include "recovery/catchup.hpp"
#include "recovery/snapshot.hpp"
#include "recovery/stability.hpp"
