// ShardSnapshot: the wire format of snapshot shipping (catch-up).
//
// A replica that crashes and restarts (or joins late) must not replay
// every envelope ever broadcast — the brief-announcement companion paper
// makes rejoin-after-partition a first-class scenario, and the Snapshot
// policy of Section VII-C already shows a stable prefix can be folded
// into a base state. A ShardSnapshot ships exactly that fold, per shard:
// for every live key the donor's compacted base state (everything
// stamped at or below the key's GC floor) plus the *unstable log
// suffix* — the entries above the floor that some process might not
// have received yet. Catch-up cost is therefore O(live state + unstable
// suffix), independent of history length.
//
// The snapshot also carries the donor's bookkeeping the joiner needs to
// resume live delivery soundly:
//  * `donor_clock` / `donor_rows` — the donor's store clock and its
//    stability knowledge, so the joiner's new stamps clear everything
//    the snapshot covers and its own GC does not restart from zero;
//  * `coverage` — per sender, the (epoch, seq) position of the donor in
//    that sender's envelope stream. Under FIFO links this tells the
//    joiner whether the prefix of a sender's live stream it is about to
//    see was already inside the snapshot, or whether an envelope fell
//    into the gap (dropped while the joiner was down, not yet at the
//    donor when it served) and the sync must be retried.
//
// These are pure message structs: the codec that fills them from a
// StoreShard and installs them back lives in recovery/catchup.hpp, and
// the wire-size estimates live with the rest of the wire format in
// store/envelope.hpp.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "adt/concepts.hpp"
#include "clock/timestamp.hpp"

namespace ucw {

/// One stamped update of a key's unstable log suffix.
template <UqAdt A>
struct SnapshotLogEntry {
  Stamp stamp;
  typename A::Update update;
};

/// One key's compacted state: base (prefix <= floor folded) + suffix.
template <UqAdt A, typename Key = std::string>
struct KeySnapshot {
  Key key;
  typename A::State base;
  LogicalTime floor = 0;  ///< stamps <= floor are inside `base`
  std::vector<SnapshotLogEntry<A>> suffix;
};

/// The donor's position in one sender's broadcast envelope stream:
/// "I have received everything of incarnation `epoch` up to `seq`"
/// (FIFO links make the prefix contiguous). `drained` marks a settled
/// stream: nothing this sender ever broadcast is still in flight, so
/// the donor's prefix IS the sender's complete stream as of the serve —
/// a joiner installing this snapshot misses nothing of it, and anything
/// the (possibly still alive) sender broadcasts later reaches the
/// now-live joiner directly. For a crashed sender this is the classic
/// failure-detector verdict; for a live-but-silent one it is what lets
/// a catch-up session retire without waiting for it to speak.
struct StreamCoverage {
  bool any = false;  ///< false: nothing received from this sender yet
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  bool drained = false;
};

/// One shard's snapshot message (a catch-up ships shard_count of them).
///
/// Incremental encoding: every shard engine stamps each of its keys with
/// a monotone *advance marker* (bumped whenever the key's log gains an
/// entry or a base), and a snapshot records the engine counter it was
/// cut at (`delta_marker`) plus the marker it is relative to
/// (`delta_since`). `delta_since == 0` is a full snapshot; otherwise the
/// snapshot carries only the keys that advanced after `delta_since`,
/// and is a complete statement relative to a receiver that already holds
/// the donor's shard state as of `delta_since` — which the receiver
/// proves by having echoed that marker (received with an earlier
/// install) in its request. Crash-catch-up retries and heal-time
/// anti-entropy both ride this: a second round re-ships only what moved
/// since the first, not every shard in full.
template <UqAdt A, typename Key = std::string>
struct ShardSnapshot {
  std::size_t shard_index = 0;
  std::size_t shard_count = 0;
  LogicalTime donor_clock = 0;
  /// Donor engine's advance counter when this snapshot was cut; echo it
  /// back to request the next serve as a delta from here.
  std::uint64_t delta_marker = 0;
  /// Marker this snapshot is relative to (0 = full: every live key).
  std::uint64_t delta_since = 0;
  /// Live keys at the donor when cut — keys_total - keys.size() is how
  /// many clean keys the delta skipped.
  std::size_t keys_total = 0;
  std::vector<LogicalTime> donor_rows;   ///< donor stability knowledge
  std::vector<StreamCoverage> coverage;  ///< per sender, see above
  std::vector<KeySnapshot<A, Key>> keys;

  /// Keyed updates carried in the unstable suffixes (the part of
  /// catch-up that scales with in-flight traffic, not history).
  [[nodiscard]] std::size_t suffix_entries() const {
    std::size_t n = 0;
    for (const auto& k : keys) n += k.suffix.size();
    return n;
  }
};

}  // namespace ucw
