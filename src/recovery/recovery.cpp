#include "recovery/stability.hpp"

#include <algorithm>

#include "recovery/catchup.hpp"
#include "util/assert.hpp"

namespace ucw {

StoreStabilityTracker::StoreStabilityTracker(ProcessId self,
                                             std::size_t n_processes)
    : clock_(self, n_processes) {}

ProcessId StoreStabilityTracker::self() const { return clock_.self(); }
std::size_t StoreStabilityTracker::size() const { return clock_.size(); }

void StoreStabilityTracker::advance_self(LogicalTime t) {
  clock_.advance_self(t);
}

void StoreStabilityTracker::observe_ack(ProcessId from, LogicalTime t) {
  if (from != clock_.self()) clock_.mark_alive(from);
  clock_.observe_direct(from, t);
}

void StoreStabilityTracker::adopt(
    const std::vector<LogicalTime>& donor_rows) {
  clock_.merge_rows(donor_rows);
}

void StoreStabilityTracker::set_crashed(ProcessId p, bool crashed) {
  if (p == clock_.self()) return;
  if (crashed) {
    clock_.mark_crashed(p);
  } else {
    clock_.mark_alive(p);
  }
}

bool StoreStabilityTracker::crashed(ProcessId p) const {
  return clock_.is_crashed(p);
}

LogicalTime StoreStabilityTracker::floor() const {
  return clock_.stability_floor();
}

LogicalTime StoreStabilityTracker::lag() const {
  const LogicalTime self_row = clock_.rows()[clock_.self()];
  const LogicalTime f = floor();
  return self_row > f ? self_row - f : 0;
}

const std::vector<LogicalTime>& StoreStabilityTracker::rows() const {
  return clock_.rows();
}

std::string StoreStabilityTracker::to_string() const {
  return clock_.to_string();
}

// ----- SeqCoverage ----------------------------------------------------

void SeqCoverage::add(std::uint64_t seq) {
  // Find the first segment whose hi+1 >= seq (the earliest one `seq`
  // could extend or fall inside), insert or grow there, then merge a
  // now-adjacent right neighbor. Live arrivals are in-order per link,
  // so the common case is extending the last segment in O(1).
  if (!segs_.empty() && segs_.back().second + 1 == seq) {
    segs_.back().second = seq;
    return;
  }
  auto it = std::lower_bound(
      segs_.begin(), segs_.end(), seq,
      [](const std::pair<std::uint64_t, std::uint64_t>& s, std::uint64_t v) {
        return s.second + 1 < v;
      });
  if (it == segs_.end()) {
    segs_.emplace_back(seq, seq);
    return;
  }
  if (seq + 1 < it->first) {
    segs_.insert(it, {seq, seq});
    return;
  }
  it->first = std::min(it->first, seq);
  it->second = std::max(it->second, seq);
  const auto next = it + 1;
  if (next != segs_.end() && it->second + 1 >= next->first) {
    it->second = std::max(it->second, next->second);
    segs_.erase(next);
  }
}

void SeqCoverage::add_prefix(std::uint64_t hi) {
  // Swallow every segment that [0, hi] touches or abuts.
  std::uint64_t new_hi = hi;
  auto it = segs_.begin();
  while (it != segs_.end() && it->first <= hi + 1) {
    new_hi = std::max(new_hi, it->second);
    ++it;
  }
  segs_.erase(segs_.begin(), it);
  segs_.insert(segs_.begin(), {0, new_hi});
}

void SeqCoverage::reset() { segs_.clear(); }

// ----- CatchupSession -------------------------------------------------

std::uint64_t CatchupSession::begin(ProcessId donor, std::size_t n_shards,
                                    std::size_t n_processes) {
  donor_ = donor;
  active_ = true;
  awaiting_ = true;
  ++round_;
  installed_.assign(n_shards, false);
  installed_count_ = 0;
  coverage_.assign(n_processes, StreamCoverage{});
  verified_.assign(n_processes, false);
  ++progress_;
  return round_;
}

void CatchupSession::abandon() {
  active_ = false;
  awaiting_ = false;
}

bool CatchupSession::note_shard_installed(std::size_t shard_index) {
  if (!active_ || shard_index >= installed_.size()) return false;
  ++progress_;
  if (installed_[shard_index]) return false;
  installed_[shard_index] = true;
  ++installed_count_;
  if (installed_count_ == installed_.size()) awaiting_ = false;
  return true;
}

void CatchupSession::merge_coverage(
    const std::vector<StreamCoverage>& coverage) {
  if (!active_) return;
  UCW_CHECK(coverage.size() == coverage_.size());
  for (std::size_t q = 0; q < coverage.size(); ++q) {
    const StreamCoverage& c = coverage[q];
    StreamCoverage& mine = coverage_[q];
    if (!c.any) {
      mine.drained = mine.drained || c.drained;
      continue;
    }
    if (!mine.any || c.epoch > mine.epoch ||
        (c.epoch == mine.epoch && c.seq > mine.seq)) {
      const bool drained = mine.drained || c.drained;
      mine = c;
      mine.drained = drained;
    } else {
      mine.drained = mine.drained || c.drained;
    }
  }
}

bool CatchupSession::reevaluate(ProcessId self,
                                const std::vector<PeerStreamView>& peers) {
  if (!active_) return false;
  UCW_CHECK(peers.size() == verified_.size());
  const std::size_t verified_before =
      static_cast<std::size_t>(std::count(verified_.begin(),
                                          verified_.end(), true));
  bool gap = false;
  for (ProcessId q = 0; q < verified_.size(); ++q) {
    if (verified_[q]) continue;
    if (q == self) {
      // Our own old incarnation's stream: the network model only allows
      // a restart once everything that incarnation sent has drained, so
      // the donor held its complete stream before serving.
      verified_[q] = true;
      continue;
    }
    const PeerStreamView& v = peers[q];
    const StreamCoverage& c = coverage_[q];
    if (!v.any) {
      // Nothing received live from q yet. If its stream was settled at
      // the donor's serve (crashed, or alive-but-silent, with nothing
      // in flight) the snapshot holds all of it and later sends reach
      // us directly — nothing to guard. Otherwise keep guarding: an
      // envelope of q's could have been dropped here while down and
      // still be in flight towards the donor; the stall retry
      // re-serves with refreshed coverage until this resolves.
      if (c.drained) verified_[q] = true;
      continue;
    }
    if (v.first_seq == 0 &&
        (v.epoch == 0 || (c.any && c.epoch >= v.epoch))) {
      // We saw this epoch from its very beginning — and, for a restarted
      // sender, the donor provably holds the prior epochs: it received
      // an epoch >= v.epoch envelope from q, and per-link FIFO means
      // every earlier (older-epoch) q message had been delivered to it
      // first. Epoch 0 alone needs no such proof (nothing precedes it).
      // Without the qualifier, a crashed sender's pre-restart tail that
      // was dropped here and had not yet reached the donor at serve
      // time would be silently lost.
      verified_[q] = true;
    } else if (c.any && c.epoch > v.epoch) {
      // Our live stream from q is a stale older incarnation; FIFO means
      // the donor received all of it before it ever saw the newer epoch,
      // so the snapshot covered it.
      verified_[q] = true;
    } else if (c.any && c.epoch == v.epoch && c.seq + 1 >= v.first_seq) {
      verified_[q] = true;  // donor covered [0, first_seq) of this epoch
    } else {
      // Envelopes [donor coverage, first_seq) of q's stream were dropped
      // while this process was down and had not reached the donor when
      // it served. Reliable broadcast will deliver them to the donor
      // eventually — re-sync.
      gap = true;
    }
  }
  // Verifications are progress too: the stall clock must not fire a
  // retry while streams are actively proving themselves.
  const std::size_t verified_now = static_cast<std::size_t>(
      std::count(verified_.begin(), verified_.end(), true));
  if (verified_now != verified_before) ++progress_;
  return gap;
}

bool CatchupSession::try_retire() {
  if (!active_ || awaiting_) return false;
  for (const bool v : verified_) {
    if (!v) return false;
  }
  active_ = false;
  return true;
}

bool CatchupSession::stalled_since(std::uint64_t progress_mark) const {
  return active_ && progress_ == progress_mark;
}

}  // namespace ucw
