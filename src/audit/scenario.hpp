// Replayable audit scenarios: one JSON value that pins down an entire
// simulated run — workload shape, store knobs, the full fault schedule
// (crashes, restarts, partitions with their mode), the seed, and the
// injected-bug flag. Because the run executes under the deterministic
// DES, a spec is a *proof-carrying artifact*: ucaudit writes the spec
// next to a refuted history, and replaying the spec re-derives the
// refutation bit-for-bit. The schedule shrinker (audit/shrink.hpp)
// works on this type: every candidate is itself a replayable spec.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adt/register.hpp"
#include "audit/auditor.hpp"
#include "faults/fault_spec.hpp"
#include "runtime/store_harness.hpp"
#include "util/json.hpp"

namespace ucw::audit {

/// The serializable twin of StoreRunConfig (plus the bug switch),
/// restricted to the int64 LWW register the history format speaks.
struct ScenarioSpec {
  std::size_t n_processes = 3;
  std::uint64_t seed = 1;
  std::size_t n_keys = 16;
  double skew = 0.8;
  /// Per-process op counts (the shrinker trims these individually).
  std::vector<std::size_t> ops_per_process{};
  double update_ratio = 0.9;
  double mean_latency_us = 500.0;
  double mean_think_us = 120.0;
  double flush_period_us = 1'000.0;
  std::size_t batch_window = 4;
  std::size_t shard_count = 8;
  bool gc = true;
  /// The injected consistency bug — a mutation-corpus wire name
  /// (src/faults/fault_spec.hpp); "none" is the clean store. The
  /// refutation target of the audit/fuzz pipeline.
  std::string fault = "none";
  std::vector<CrashPlan> crashes{};
  std::vector<RestartPlan> restarts{};
  std::vector<PartitionPlan> partitions{};

  [[nodiscard]] std::size_t total_ops() const {
    std::size_t n = 0;
    for (const std::size_t o : ops_per_process) n += o;
    return n;
  }

  /// Fault events in the schedule (what the shrinker minimizes besides
  /// the op counts).
  [[nodiscard]] std::size_t fault_events() const {
    return crashes.size() + restarts.size() + partitions.size();
  }

  [[nodiscard]] StoreRunConfig to_run_config() const {
    StoreRunConfig cfg;
    cfg.n_processes = n_processes;
    cfg.seed = seed;
    cfg.latency = LatencyModel::exponential(mean_latency_us);
    cfg.fifo_links = true;
    cfg.n_keys = n_keys;
    cfg.skew = skew;
    cfg.ops_per_process_override = ops_per_process;
    cfg.ops_per_process =
        ops_per_process.empty() ? 50 : ops_per_process.front();
    cfg.update_ratio = update_ratio;
    cfg.think_time = LatencyModel::exponential(mean_think_us);
    cfg.flush_period = flush_period_us;
    cfg.store.batch_window = batch_window;
    cfg.store.shard_count = shard_count;
    cfg.store.gc = gc;
    Fault f = Fault::kNone;
    (void)fault_from_name(fault, &f);  // validated at from_json/parse time
    cfg.store.fault = FaultSpec{f};
    cfg.crashes = crashes;
    cfg.restarts = restarts;
    cfg.partitions = partitions;
    cfg.record_history = true;
    // Mutant runs can livelock recovery (a retry loop whose repair the
    // fault suppresses forever); the ceiling is ~10x a healthy run's
    // virtual span, so it only ever bites on a broken store — which
    // then final-reads its diverged states and gets refuted instead of
    // spinning the DES unboundedly.
    cfg.sim_horizon = 250'000.0;
    return cfg;
  }

  // GCC 12 reports spurious -Wmaybe-uninitialized deep in std::variant
  // when temporaries move into the Object map; nothing here reads an
  // uninitialized value.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
  [[nodiscard]] JsonValue to_json() const {
    JsonValue::Object o;
    o.emplace("format", JsonValue(std::string("ucw-scenario-v1")));
    o.emplace("n_processes", JsonValue(static_cast<double>(n_processes)));
    o.emplace("seed", JsonValue(static_cast<double>(seed)));
    o.emplace("n_keys", JsonValue(static_cast<double>(n_keys)));
    o.emplace("skew", JsonValue(skew));
    JsonValue::Array ops;
    for (const std::size_t n : ops_per_process) {
      ops.push_back(JsonValue(static_cast<double>(n)));
    }
    o.emplace("ops_per_process", JsonValue(std::move(ops)));
    o.emplace("update_ratio", JsonValue(update_ratio));
    o.emplace("mean_latency_us", JsonValue(mean_latency_us));
    o.emplace("mean_think_us", JsonValue(mean_think_us));
    o.emplace("flush_period_us", JsonValue(flush_period_us));
    o.emplace("batch_window",
                   JsonValue(static_cast<double>(batch_window)));
    o.emplace("shard_count", JsonValue(static_cast<double>(shard_count)));
    o.emplace("gc", JsonValue(gc));
    o.emplace("fault", JsonValue(fault));
    JsonValue::Array cr;
    for (const CrashPlan& c : crashes) {
      JsonValue::Object e;
      e.emplace("pid", JsonValue(static_cast<double>(c.pid)));
      e.emplace("at", JsonValue(c.at));
      cr.push_back(JsonValue(std::move(e)));
    }
    o.emplace("crashes", JsonValue(std::move(cr)));
    JsonValue::Array rs;
    for (const RestartPlan& r : restarts) {
      JsonValue::Object e;
      e.emplace("pid", JsonValue(static_cast<double>(r.pid)));
      e.emplace("at", JsonValue(r.at));
      e.emplace("resume_ops",
                     JsonValue(static_cast<double>(r.resume_ops)));
      rs.push_back(JsonValue(std::move(e)));
    }
    o.emplace("restarts", JsonValue(std::move(rs)));
    JsonValue::Array ps;
    for (const PartitionPlan& p : partitions) {
      JsonValue::Object e;
      e.emplace("at", JsonValue(p.at));
      JsonValue::Array g;
      for (const std::size_t gi : p.group_of) {
        g.push_back(JsonValue(static_cast<double>(gi)));
      }
      e.emplace("group_of", JsonValue(std::move(g)));
      e.emplace("anti_entropy", JsonValue(p.anti_entropy));
      e.emplace("ae_delay", JsonValue(p.ae_delay));
      e.emplace("escalation_grace", JsonValue(p.escalation_grace));
      ps.push_back(JsonValue(std::move(e)));
    }
    o.emplace("partitions", JsonValue(std::move(ps)));
    return JsonValue(std::move(o));
  }
#pragma GCC diagnostic pop

  static bool from_json(const JsonValue& v, ScenarioSpec* out,
                        std::string* err = nullptr) {
    if (!v.is_object()) {
      if (err) *err = "scenario must be a JSON object";
      return false;
    }
    ScenarioSpec s;
    s.n_processes = static_cast<std::size_t>(
        v["n_processes"].as_int(static_cast<std::int64_t>(s.n_processes)));
    s.seed = static_cast<std::uint64_t>(
        v["seed"].as_int(static_cast<std::int64_t>(s.seed)));
    s.n_keys = static_cast<std::size_t>(
        v["n_keys"].as_int(static_cast<std::int64_t>(s.n_keys)));
    s.skew = v["skew"].as_double(s.skew);
    s.ops_per_process.clear();
    if (v["ops_per_process"].is_array()) {
      for (const JsonValue& e : v["ops_per_process"].as_array()) {
        s.ops_per_process.push_back(static_cast<std::size_t>(e.as_int(0)));
      }
    }
    s.update_ratio = v["update_ratio"].as_double(s.update_ratio);
    s.mean_latency_us = v["mean_latency_us"].as_double(s.mean_latency_us);
    s.mean_think_us = v["mean_think_us"].as_double(s.mean_think_us);
    s.flush_period_us = v["flush_period_us"].as_double(s.flush_period_us);
    s.batch_window = static_cast<std::size_t>(
        v["batch_window"].as_int(static_cast<std::int64_t>(s.batch_window)));
    s.shard_count = static_cast<std::size_t>(
        v["shard_count"].as_int(static_cast<std::int64_t>(s.shard_count)));
    s.gc = v["gc"].as_bool(s.gc);
    if (v["fault"].is_string()) {
      s.fault = v["fault"].as_string();
    } else if (v["fold_acks_across_gaps"].as_bool(false)) {
      // Legacy specs (pre-corpus) carried the one injected bug as a bool.
      s.fault = "fold_acks_across_gaps";
    }
    Fault parsed_fault = Fault::kNone;
    if (!fault_from_name(s.fault, &parsed_fault)) {
      if (err) *err = "unknown fault name: " + s.fault;
      return false;
    }
    if (v["crashes"].is_array()) {
      for (const JsonValue& e : v["crashes"].as_array()) {
        CrashPlan c;
        c.pid = static_cast<ProcessId>(e["pid"].as_int(0));
        c.at = e["at"].as_double(0.0);
        s.crashes.push_back(c);
      }
    }
    if (v["restarts"].is_array()) {
      for (const JsonValue& e : v["restarts"].as_array()) {
        RestartPlan r;
        r.pid = static_cast<ProcessId>(e["pid"].as_int(0));
        r.at = e["at"].as_double(0.0);
        r.resume_ops = static_cast<std::size_t>(e["resume_ops"].as_int(0));
        s.restarts.push_back(r);
      }
    }
    if (v["partitions"].is_array()) {
      for (const JsonValue& e : v["partitions"].as_array()) {
        PartitionPlan p;
        p.at = e["at"].as_double(0.0);
        if (e["group_of"].is_array()) {
          for (const JsonValue& g : e["group_of"].as_array()) {
            p.group_of.push_back(static_cast<std::size_t>(g.as_int(0)));
          }
        }
        p.anti_entropy = e["anti_entropy"].as_bool(true);
        p.ae_delay = e["ae_delay"].as_double(1.0);
        p.escalation_grace = e["escalation_grace"].as_double(0.0);
        s.partitions.push_back(p);
      }
    }
    if (s.n_processes == 0) {
      if (err) *err = "n_processes must be positive";
      return false;
    }
    for (const PartitionPlan& p : s.partitions) {
      if (p.group_of.size() != s.n_processes) {
        if (err) *err = "partition group_of size != n_processes";
        return false;
      }
    }
    *out = std::move(s);
    return true;
  }
};

/// Shaping knobs for the random scenario generator. The defaults
/// reproduce the legacy generator draw-for-draw; the extra flags steer
/// a schedule toward the code path a corpus mutant lives on (the fuzz
/// driver sets them from FaultInfo) without perturbing the base draws —
/// a given seed's schedule is the legacy one, possibly with a forced
/// crash appended or the cuts widened to three groups.
struct ScenarioShape {
  std::size_t n_processes = 3;
  std::size_t ops_per_process = 120;
  /// Corpus mutant wire name ("none" = clean store).
  std::string fault = "none";
  /// Guarantee a crash/restart in the schedule (recovery-path mutants
  /// need a catch-up session to bite).
  bool force_crash_restart = false;
  /// Cut into three groups instead of two (relay/echo mutants need a
  /// third party whose content must transit a representative).
  bool three_way = false;
};

/// A randomized partition/crash schedule over the run window — the
/// CI smoke's scenario generator. Deterministic in `seed`; the returned
/// spec replays (and shrinks) like any hand-written one.
inline ScenarioSpec random_fault_scenario(std::uint64_t seed,
                                          const ScenarioShape& shape) {
  const std::size_t n_processes = shape.n_processes;
  const std::size_t ops_per_process = shape.ops_per_process;
  ScenarioSpec s;
  s.n_processes = n_processes;
  s.seed = seed;
  s.ops_per_process.assign(n_processes, ops_per_process);
  s.fault = shape.fault;
  Rng rng = Rng(seed).fork("fault-schedule");
  // Ops are spaced ~mean_think_us apart per process; faults land inside
  // the active window so they actually interleave with traffic.
  const double horizon =
      static_cast<double>(ops_per_process) * s.mean_think_us;
  // 1-3 partition episodes: cut, then heal after a sub-window. Groups
  // split the cluster in two at a random boundary (three contiguous
  // groups when the shape asks — the boundary draw is consumed either
  // way, so a seed's schedule differs only in the cut's group map).
  const int episodes = static_cast<int>(rng.uniform_int(1, 3));
  double t = rng.uniform_real(0.1, 0.3) * horizon;
  for (int i = 0; i < episodes && t < horizon; ++i) {
    std::vector<std::size_t> cut(n_processes, 0);
    const std::size_t boundary = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(n_processes) - 1));
    if (shape.three_way && n_processes >= 3) {
      for (std::size_t p = 0; p < n_processes; ++p) {
        cut[p] = p * 3 / n_processes;
      }
    } else {
      for (std::size_t p = boundary; p < n_processes; ++p) cut[p] = 1;
    }
    PartitionPlan split;
    split.at = t;
    split.group_of = cut;
    // Half the episodes escalate (hold a grace window, then drop);
    // the rest drop at the cut.
    split.escalation_grace =
        rng.chance(0.5) ? rng.uniform_real(0.5, 2.0) * s.flush_period_us
                        : 0.0;
    s.partitions.push_back(split);
    t += rng.uniform_real(0.15, 0.35) * horizon;
    PartitionPlan heal;
    heal.at = t;
    heal.group_of.assign(n_processes, 0);
    s.partitions.push_back(heal);
    t += rng.uniform_real(0.1, 0.25) * horizon;
  }
  // Optional crash/restart of one process, clear of the last heal
  // (mandatory under force_crash_restart; the coin is tossed first
  // either way so the base schedule of a seed never shifts).
  bool want_crash = n_processes >= 3 && rng.chance(0.5);
  want_crash = want_crash ||
               (shape.force_crash_restart && n_processes >= 2);
  if (want_crash) {
    const ProcessId victim =
        static_cast<ProcessId>(rng.uniform_int(0, n_processes - 1));
    CrashPlan crash;
    crash.pid = victim;
    crash.at = rng.uniform_real(0.3, 0.6) * horizon;
    s.crashes.push_back(crash);
    RestartPlan restart;
    restart.pid = victim;
    restart.at = crash.at + rng.uniform_real(0.2, 0.4) * horizon;
    restart.resume_ops = ops_per_process / 4;
    s.restarts.push_back(restart);
  }
  return s;
}

/// Legacy signature (pre-corpus): `inject_bug` selects the original
/// fold-acks-across-gaps bug.
inline ScenarioSpec random_fault_scenario(std::uint64_t seed,
                                          std::size_t n_processes = 3,
                                          std::size_t ops_per_process = 120,
                                          bool inject_bug = false) {
  ScenarioShape shape;
  shape.n_processes = n_processes;
  shape.ops_per_process = ops_per_process;
  shape.fault = inject_bug ? "fold_acks_across_gaps" : "none";
  return random_fault_scenario(seed, shape);
}

struct ScenarioResult {
  bool converged = false;
  AuditReport audit;
  HistoryFile history;
  std::uint64_t total_updates = 0;
  double duration_us = 0.0;
};

/// Runs the spec under the DES, records the full op history, audits it
/// in-process, and (optionally) writes the JSONL next to any DOT
/// witnesses. Deterministic: same spec → same history → same verdict.
inline ScenarioResult run_scenario(const ScenarioSpec& spec,
                                   const std::string& history_out = {},
                                   const AuditOptions& opt = {}) {
  using Reg = RegisterAdt<std::int64_t>;
  StoreRunConfig cfg = spec.to_run_config();
  cfg.history_out = history_out;
  auto out = run_store_simulation<Reg>(
      Reg{}, cfg, [](Rng& rng) {
        return RegWrite<std::int64_t>{rng.uniform_int(1, 1'000'000)};
      });
  ScenarioResult r;
  r.converged = out.converged;
  r.history = std::move(out.history);
  r.audit = audit_history(r.history, opt);
  r.total_updates = out.total_updates;
  r.duration_us = out.duration;
  return r;
}

}  // namespace ucw::audit
