// Failing-schedule shrinking: given a ScenarioSpec whose replay refutes
// update consistency, produce a minimal spec that still refutes it.
//
// The algorithm is greedy ddmin-style reduction to a 1-minimal
// fixpoint. The atoms are:
//
//   * drop one partition plan (a split or a heal — a heal on an
//     already-healed network is a no-op, so any subset is replayable);
//   * drop one restart (the crashed process just stays down);
//   * drop one crash together with that pid's restarts (a restart
//     without its crash is not a valid schedule);
//   * shrink one process's op count — halving while the failure
//     persists, then decrementing, so the counts converge in
//     O(log ops) evaluations instead of O(ops).
//
// The loop re-tries every atom until a full pass makes no progress:
// at exit, no single atom removal/decrement keeps the spec failing,
// which is exactly 1-minimality over this atom set. Every candidate is
// evaluated by *replaying it under the deterministic DES*, so the
// result is not a heuristic guess — the shrunk spec demonstrably still
// fails, and the dropped atoms demonstrably don't matter.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "audit/scenario.hpp"

namespace ucw::audit {

struct ShrinkOptions {
  /// Evaluation budget: each candidate costs one full scenario replay.
  std::size_t max_evaluations = 400;
  /// Progress callback (evaluations so far, current total ops,
  /// current fault events); null = silent.
  std::function<void(std::size_t, std::size_t, std::size_t)> progress;
};

struct ShrinkResult {
  ScenarioSpec spec;            ///< the shrunk, still-failing scenario
  std::size_t evaluations = 0;  ///< replays spent
  std::size_t rounds = 0;       ///< full passes over the atom set
  /// True when the loop reached the 1-minimal fixpoint (false = the
  /// evaluation budget ran out first; the spec is still failing, just
  /// possibly not minimal).
  bool minimal = false;
};

/// Shrinks `failing` (which must satisfy `is_failing`) to a 1-minimal
/// still-failing spec. `is_failing` is typically
/// `[](const ScenarioSpec& s) { return run_scenario(s).audit.refuted(); }`.
inline ShrinkResult shrink_scenario(
    const ScenarioSpec& failing,
    const std::function<bool(const ScenarioSpec&)>& is_failing,
    const ShrinkOptions& opt = {}) {
  ShrinkResult r;
  r.spec = failing;

  const auto check = [&](const ScenarioSpec& candidate) {
    if (r.evaluations >= opt.max_evaluations) return false;
    ++r.evaluations;
    const bool fails = is_failing(candidate);
    if (opt.progress) {
      opt.progress(r.evaluations, r.spec.total_ops(), r.spec.fault_events());
    }
    return fails;
  };

  bool progress = true;
  while (progress && r.evaluations < opt.max_evaluations) {
    progress = false;
    ++r.rounds;

    // Partitions: try dropping each plan.
    for (std::size_t i = 0; i < r.spec.partitions.size();) {
      ScenarioSpec cand = r.spec;
      cand.partitions.erase(cand.partitions.begin() +
                            static_cast<std::ptrdiff_t>(i));
      if (check(cand)) {
        r.spec = std::move(cand);
        progress = true;
      } else {
        ++i;
      }
    }

    // Restarts: each is independently droppable.
    for (std::size_t i = 0; i < r.spec.restarts.size();) {
      ScenarioSpec cand = r.spec;
      cand.restarts.erase(cand.restarts.begin() +
                          static_cast<std::ptrdiff_t>(i));
      if (check(cand)) {
        r.spec = std::move(cand);
        progress = true;
      } else {
        ++i;
      }
    }

    // Crashes: dropping one takes that pid's restarts with it.
    for (std::size_t i = 0; i < r.spec.crashes.size();) {
      ScenarioSpec cand = r.spec;
      const ProcessId pid = cand.crashes[i].pid;
      cand.crashes.erase(cand.crashes.begin() +
                         static_cast<std::ptrdiff_t>(i));
      bool last_crash_of_pid = true;
      for (const CrashPlan& c : cand.crashes) {
        if (c.pid == pid) {
          last_crash_of_pid = false;
          break;
        }
      }
      if (last_crash_of_pid) {
        std::erase_if(cand.restarts,
                      [pid](const RestartPlan& rp) { return rp.pid == pid; });
      }
      if (check(cand)) {
        r.spec = std::move(cand);
        progress = true;
      } else {
        ++i;
      }
    }

    // Op counts: halve while failing, then decrement to the floor.
    for (std::size_t p = 0; p < r.spec.ops_per_process.size(); ++p) {
      while (r.spec.ops_per_process[p] > 1) {
        ScenarioSpec cand = r.spec;
        cand.ops_per_process[p] /= 2;
        if (!check(cand)) break;
        r.spec = std::move(cand);
        progress = true;
      }
      while (r.spec.ops_per_process[p] > 0) {
        ScenarioSpec cand = r.spec;
        --cand.ops_per_process[p];
        if (!check(cand)) break;
        r.spec = std::move(cand);
        progress = true;
      }
    }
  }

  r.minimal = !progress && r.evaluations < opt.max_evaluations;
  return r;
}

}  // namespace ucw::audit
