// Offline black-box UC/EC certification of recorded histories.
//
// Consumes the concrete JSONL interchange rows (int64 LWW registers —
// the store's Algorithm 2 object) and certifies per key, which is what
// keeps million-op audits near-linear (criteria/per_key.hpp explains
// the decomposition and why Yes needs a *global* witness):
//
//   * no final reads       → key unconstrained ("no-omega");
//   * final reads disagree → divergence: UC and EC refuted — sound
//     even from a truncated history, the responses really happened;
//   * reads agree on v:
//       v written by the stamp-order last write → "stamp-replay". The
//       certificate is the global Lamport order itself, so every key
//       certified this way shares one witness linearization — that is
//       the whole-history Yes;
//       v written by some chain-maximal update but not the stamp-order
//       winner → per-key satisfiable, but not by the shared witness:
//       honest Unknown ("po-maximal-not-lww"), never a guess;
//       v written by no chain-maximal update → no program-order-
//       consistent linearization ends with v: refuted ("unexplained-
//       value") — downgraded to Unknown when the recorder dropped
//     records, since the explaining write may be in the hole.
//
// Refuted keys get a DOT witness figure (the key's chains plus the
// disagreeing ω-reads) rendered through the existing exporter.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "adt/register.hpp"
#include "criteria/verdict.hpp"
#include "history/export.hpp"
#include "history/history.hpp"
#include "history/jsonl.hpp"

namespace ucw::audit {

struct AuditOptions {
  /// Problem keys (refuted/unknown) retained in the report.
  std::size_t max_reported = 32;
  /// When nonempty, write a DOT witness per refuted key here.
  std::string dot_dir;
  std::size_t max_dot_keys = 4;
  /// Figures stay readable: at most this many updates per witness
  /// (the program-order tail of each chain is what matters).
  std::size_t max_dot_updates = 24;
};

struct KeyAudit {
  std::string key;
  Verdict uc = Verdict::Unknown;
  Verdict ec = Verdict::Unknown;
  std::string method;
  std::string detail;
  std::size_t updates = 0;
  std::size_t final_reads = 0;
};

struct AuditReport {
  std::size_t ops = 0;
  std::size_t update_ops = 0;
  std::size_t query_ops = 0;
  std::size_t final_reads = 0;
  std::size_t keys = 0;
  std::size_t keys_certified = 0;
  std::size_t keys_refuted = 0;
  std::size_t keys_unknown = 0;
  /// False when the recorder reported dropped records — certification
  /// (UC Yes) is withheld on incomplete histories.
  bool complete = true;
  Verdict uc = Verdict::Unknown;
  Verdict ec = Verdict::Unknown;
  std::vector<KeyAudit> problems;
  std::vector<std::string> dot_files;

  [[nodiscard]] bool certified() const { return uc == Verdict::Yes; }
  [[nodiscard]] bool refuted() const { return uc == Verdict::No; }

  [[nodiscard]] std::string summary() const {
    std::ostringstream os;
    os << "audit: " << ops << " ops (" << update_ops << " updates, "
       << query_ops << " queries, " << final_reads << " final reads) over "
       << keys << " keys | uc=" << to_string(uc) << " ec=" << to_string(ec)
       << " | certified=" << keys_certified << " refuted=" << keys_refuted
       << " unknown=" << keys_unknown
       << (complete ? "" : " | INCOMPLETE (dropped records)");
    return os.str();
  }
};

namespace detail {

struct KeyUpdate {
  std::uint64_t chain = 0;  ///< pid<<32 | thread
  Stamp stamp;
  std::int64_t value = 0;
};

struct KeyRead {
  ProcessId pid = 0;
  std::int64_t value = 0;
};

struct KeyData {
  std::vector<KeyUpdate> updates;  ///< file order (per-chain = program order)
  std::vector<KeyRead> finals;
};

/// Witness figure: the key's update chains (program-order tail) plus
/// each final read as its own ω chain.
inline std::string write_witness_dot(const std::string& dir,
                                     const std::string& key,
                                     const KeyData& data,
                                     std::size_t max_updates) {
  using Reg = RegisterAdt<std::int64_t>;
  std::unordered_map<std::uint64_t, ProcessId> chain_ids;
  std::vector<std::vector<const KeyUpdate*>> per_chain;
  for (const auto& u : data.updates) {
    auto [it, fresh] = chain_ids.try_emplace(
        u.chain, static_cast<ProcessId>(chain_ids.size()));
    if (fresh) per_chain.emplace_back();
    per_chain[it->second].push_back(&u);
  }
  const std::size_t per_chain_cap =
      per_chain.empty()
          ? 0
          : std::max<std::size_t>(1, max_updates / per_chain.size());
  std::vector<Event<Reg>> events;
  for (std::size_t c = 0; c < per_chain.size(); ++c) {
    const auto& chain = per_chain[c];
    const std::size_t from =
        chain.size() > per_chain_cap ? chain.size() - per_chain_cap : 0;
    for (std::size_t i = from; i < chain.size(); ++i) {
      Event<Reg> e;
      e.id = static_cast<EventId>(events.size());
      e.pid = static_cast<ProcessId>(c);
      e.seq = static_cast<std::uint32_t>(i - from);
      e.label = RegWrite<std::int64_t>{chain[i]->value};
      events.push_back(std::move(e));
    }
  }
  ProcessId pid = static_cast<ProcessId>(per_chain.size());
  for (const auto& r : data.finals) {
    Event<Reg> e;
    e.id = static_cast<EventId>(events.size());
    e.pid = pid++;
    e.seq = 0;
    e.label = QueryObservation<Reg>{RegRead{}, r.value};
    e.omega = true;
    events.push_back(std::move(e));
  }
  History<Reg> h(Reg{}, std::move(events), pid);

  std::string safe;
  for (const char c : key) {
    safe.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  const std::string path = dir + "/witness-" + safe + ".dot";
  std::ofstream os(path);
  os << to_dot(h);
  return path;
}

}  // namespace detail

/// Certifies one loaded history. Near-linear in ops: one grouping pass,
/// then O(updates of key) per key.
inline AuditReport audit_history(const HistoryFile& h,
                                 const AuditOptions& opt = {}) {
  AuditReport report;
  report.complete = h.meta.dropped == 0;

  std::unordered_map<std::string, detail::KeyData> keys;
  keys.reserve(1024);
  for (const auto& l : h.lines) {
    report.ops++;
    auto& data = keys[l.key];
    switch (l.op) {
      case 'u':
        report.update_ops++;
        data.updates.push_back(detail::KeyUpdate{
            (static_cast<std::uint64_t>(l.pid) << 32) | l.thread,
            Stamp{l.clock, l.pid}, l.value});
        break;
      case 'q':
        report.query_ops++;
        break;
      case 'f':
        report.final_reads++;
        data.finals.push_back(detail::KeyRead{l.pid, l.value});
        break;
      default:
        break;
    }
  }
  report.keys = keys.size();

  Verdict uc = Verdict::Yes;
  Verdict ec = Verdict::Yes;
  for (const auto& [key, data] : keys) {
    KeyAudit ka;
    ka.key = key;
    ka.updates = data.updates.size();
    ka.final_reads = data.finals.size();

    if (data.finals.empty()) {
      ka.uc = ka.ec = Verdict::Yes;
      ka.method = "no-omega";
    } else {
      // Divergence: the recorded responses themselves disagree.
      bool agree = true;
      for (const auto& r : data.finals) {
        if (r.value != data.finals.front().value) {
          agree = false;
          break;
        }
      }
      if (!agree) {
        ka.uc = ka.ec = Verdict::No;
        ka.method = "divergent";
        std::ostringstream os;
        os << "final reads disagree:";
        for (const auto& r : data.finals) {
          os << " p" << r.pid << "=" << r.value;
        }
        ka.detail = os.str();
      } else {
        ka.ec = Verdict::Yes;
        const std::int64_t v = data.finals.front().value;
        if (data.updates.empty()) {
          if (v == 0) {
            ka.uc = Verdict::Yes;
            ka.method = "initial";
          } else {
            ka.uc = report.complete ? Verdict::No : Verdict::Unknown;
            ka.method = "unexplained-value";
            ka.detail = "read " + std::to_string(v) +
                        " but no recorded update wrote this key";
          }
        } else {
          // One pass: stamp-order winner, per-chain program-order last,
          // per-chain stamp monotonicity.
          std::unordered_map<std::uint64_t, const detail::KeyUpdate*> last;
          const detail::KeyUpdate* lww = &data.updates.front();
          bool monotone = true;
          for (const auto& u : data.updates) {
            if (lww->stamp < u.stamp) lww = &u;
            auto [it, fresh] = last.try_emplace(u.chain, &u);
            if (!fresh) {
              if (!(it->second->stamp < u.stamp)) monotone = false;
              it->second = &u;
            }
          }
          if (!monotone) {
            ka.uc = Verdict::Unknown;
            ka.method = "unordered-chain";
            ka.detail =
                "a chain's stamps are not monotone — recording anomaly";
          } else if (v == lww->value) {
            ka.uc = Verdict::Yes;
            ka.method = "stamp-replay";
          } else {
            bool maximal_writes_v = false;
            for (const auto& [chain, u] : last) {
              if (u->value == v) {
                maximal_writes_v = true;
                break;
              }
            }
            if (maximal_writes_v) {
              ka.uc = Verdict::Unknown;
              ka.method = "po-maximal-not-lww";
              ka.detail = "read " + std::to_string(v) +
                          " is writable by a chain-maximal update but not "
                          "by the stamp-order winner " +
                          std::to_string(lww->value) + " @" +
                          lww->stamp.to_string();
            } else {
              ka.uc = report.complete ? Verdict::No : Verdict::Unknown;
              ka.method = "unexplained-value";
              ka.detail =
                  "read " + std::to_string(v) +
                  " but no chain-maximal update writes it (stamp-order "
                  "winner is " + std::to_string(lww->value) + " @" +
                  lww->stamp.to_string() + ")";
            }
          }
        }
      }
    }

    if (ka.uc == Verdict::Yes) {
      report.keys_certified++;
    } else if (ka.uc == Verdict::No) {
      report.keys_refuted++;
    } else {
      report.keys_unknown++;
    }
    uc = uc && ka.uc;
    ec = ec && ka.ec;
    if (ka.uc != Verdict::Yes && report.problems.size() < opt.max_reported) {
      if (ka.uc == Verdict::No && !opt.dot_dir.empty() &&
          report.dot_files.size() < opt.max_dot_keys) {
        report.dot_files.push_back(detail::write_witness_dot(
            opt.dot_dir, key, data, opt.max_dot_updates));
      }
      report.problems.push_back(std::move(ka));
    }
  }

  // UC Yes is a certificate over the *whole* update set; holes in the
  // recording void it (refutations by divergence stand either way).
  if (!report.complete && uc == Verdict::Yes) uc = Verdict::Unknown;
  report.uc = uc;
  report.ec = ec;
  return report;
}

}  // namespace ucw::audit
