// Live op-history recorder: the capture half of the audit pipeline.
//
// One OpRecorder per process captures every client-visible operation
// (update invocations with their arbitration stamp, query responses,
// and the post-quiescence "final read" of each key that plays the role
// of the paper's ω-queries) so an *offline* checker can certify update
// consistency from the recorded history alone — black-box, without
// trusting the store's own convergence report.
//
// Capture discipline reuses the src/obs/ ring idea (per-writer fixed
// slabs, one atomic cursor, no locks on the hot path) with one twist:
// where the trace ring overwrites its oldest events (newest are the
// interesting ones for a flight recorder), the history recorder drops
// the *newest* records once a ring is full. An audit needs a
// contiguous program-order prefix per thread — a hole in the middle of
// a chain would silently weaken the program order the checker reasons
// over, while a truncated tail is detectable and reported honestly
// (`dropped()`, exported in the JSONL meta line and surfaced as the
// `dropped_history_records` counter; the auditor refuses to certify an
// incomplete history).
//
// Like the tracer, the recorder is owned by the caller (harness/test),
// never by the store: stores hold a raw pointer that is null when
// recording is off, so the cost of the feature when unused is one
// branch per operation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adt/concepts.hpp"
#include "clock/timestamp.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace ucw::audit {

enum class OpKind : std::uint8_t {
  kUpdate = 0,    ///< update invocation, stamped
  kQuery = 1,     ///< mid-run query response (does not constrain UC)
  kFinalRead = 2  ///< post-quiescence read — the ω-observation
};

/// One invocation/response record. `thread` is the client thread's
/// producer slot (0 for single-threaded frontends), which together
/// with `pid` names the program-order chain the op belongs to.
template <UqAdt A, typename Key = std::string>
struct OpRecord {
  OpKind kind = OpKind::kUpdate;
  ProcessId pid = 0;
  std::uint32_t thread = 0;
  Key key{};
  /// Updates: the arbitration stamp. Queries: local clock at response
  /// (clock only; pid mirrors the recorder's process).
  Stamp stamp{};
  typename A::Update update{};   ///< valid iff kind == kUpdate
  typename A::QueryOut out{};    ///< valid iff kind != kUpdate
  double ts = 0.0;               ///< wall/virtual time (µs)
};

/// Per-process history recorder: one single-writer ring per client
/// thread plus an unbounded (harness-thread-only) list for final
/// reads. Thread-safe for its intended sharing: thread t writes only
/// ring t, counters are relaxed atomics, aggregation happens after the
/// run quiesces.
template <UqAdt A, typename Key = std::string>
class OpRecorder {
 public:
  using Record = OpRecord<A, Key>;

  /// `threads` rings of `capacity` records each are allocated up
  /// front; `now`/`now_ctx` follow the tracer's injected-clock
  /// convention (virtual time under the DES, wall time in thread
  /// runs; null = all timestamps zero).
  OpRecorder(ProcessId pid, std::size_t threads, std::size_t capacity,
             obs::TraceNowFn now = nullptr, void* now_ctx = nullptr)
      : pid_(pid), capacity_(capacity), now_(now), now_ctx_(now_ctx) {
    UCW_CHECK(threads > 0 && capacity > 0);
    rings_.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      rings_.push_back(std::make_unique<Ring>());
      rings_.back()->slots.resize(capacity);
    }
  }

  OpRecorder(const OpRecorder&) = delete;
  OpRecorder& operator=(const OpRecorder&) = delete;

  [[nodiscard]] ProcessId pid() const { return pid_; }
  [[nodiscard]] std::size_t threads() const { return rings_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void record_update(std::size_t thread, const Key& key, const Stamp& stamp,
                     const typename A::Update& u) {
    Record r;
    r.kind = OpKind::kUpdate;
    r.key = key;
    r.stamp = stamp;
    r.update = u;
    push(thread, std::move(r));
  }

  void record_query(std::size_t thread, const Key& key, LogicalTime clock,
                    const typename A::QueryOut& out) {
    Record r;
    r.kind = OpKind::kQuery;
    r.key = key;
    r.stamp = Stamp{clock, pid_};
    r.out = out;
    push(thread, std::move(r));
  }

  /// Records one ω-observation (harness thread, post-quiescence; the
  /// run is over, so these never race the op rings and never drop).
  void record_final_read(const Key& key, const typename A::QueryOut& out) {
    Record r;
    r.kind = OpKind::kFinalRead;
    r.pid = pid_;
    r.key = key;
    r.out = out;
    r.ts = now();
    final_reads_.push_back(std::move(r));
  }

  /// Records captured into rings (excludes final reads, which are
  /// accounted separately and cannot drop).
  [[nodiscard]] std::uint64_t captured() const {
    std::uint64_t n = 0;
    for (const auto& ring : rings_) {
      const std::uint64_t c = ring->count.load(std::memory_order_relaxed);
      n += c < capacity_ ? c : capacity_;
    }
    return n;
  }

  /// Records silently *not* captured because a ring was full — every
  /// one of these makes the exported history untrustworthy for
  /// certification, which is why the count rides the metrics snapshot.
  [[nodiscard]] std::uint64_t dropped() const {
    std::uint64_t n = 0;
    for (const auto& ring : rings_) {
      const std::uint64_t c = ring->count.load(std::memory_order_relaxed);
      if (c > capacity_) n += c - capacity_;
    }
    return n;
  }

  [[nodiscard]] std::uint64_t final_reads_recorded() const {
    return final_reads_.size();
  }

  /// Copies every record out, thread-major (per-thread program order
  /// preserved), final reads last. Call after the run quiesces.
  [[nodiscard]] std::vector<Record> drain() const {
    std::vector<Record> out;
    out.reserve(captured() + final_reads_.size());
    for (std::size_t t = 0; t < rings_.size(); ++t) {
      const auto& ring = *rings_[t];
      const std::uint64_t c = ring.count.load(std::memory_order_acquire);
      const std::uint64_t kept = c < capacity_ ? c : capacity_;
      for (std::uint64_t i = 0; i < kept; ++i) {
        Record r = ring.slots[i];
        r.pid = pid_;
        r.thread = static_cast<std::uint32_t>(t);
        out.push_back(std::move(r));
      }
    }
    for (const auto& r : final_reads_) out.push_back(r);
    return out;
  }

 private:
  struct Ring {
    /// Total push attempts; slots [0, min(count, capacity)) are live.
    std::atomic<std::uint64_t> count{0};
    std::vector<OpRecord<A, Key>> slots;
  };

  [[nodiscard]] double now() const { return now_ ? now_(now_ctx_) : 0.0; }

  void push(std::size_t thread, Record r) {
    UCW_DCHECK(thread < rings_.size());
    Ring& ring = *rings_[thread];
    // Single writer per ring: fetch_add is the claim, the slot write
    // needs no further synchronization until the post-run drain (which
    // pairs its acquire with nothing because the threads have joined).
    const std::uint64_t i = ring.count.fetch_add(1, std::memory_order_relaxed);
    if (i >= capacity_) return;  // drop-newest; surfaced via dropped()
    r.ts = now();
    ring.slots[i] = std::move(r);
  }

  ProcessId pid_;
  std::size_t capacity_;
  obs::TraceNowFn now_;
  void* now_ctx_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<Record> final_reads_;
};

}  // namespace ucw::audit
