#include "faults/fault_spec.hpp"

namespace ucw {

namespace {

// Wire names are part of the interchange format (ScenarioSpec JSON,
// history meta header, campaign reports): never rename, only append.
struct NameRow {
  Fault fault;
  const char* name;
};

constexpr NameRow kNames[] = {
    {Fault::kNone, "none"},
    {Fault::kFoldAcksAcrossGaps, "fold_acks_across_gaps"},
    {Fault::kMergeTiesByArrival, "merge_ties_by_arrival"},
    {Fault::kLwwTieSkew, "lww_tie_skew"},
    {Fault::kGcDuringCatchupSession, "gc_during_catchup_session"},
    {Fault::kInstallSkipsSuffix, "install_skips_suffix"},
    {Fault::kEchoSuppressThirdParty, "echo_suppress_third_party"},
    {Fault::kInstallSkipsDirtyMark, "install_skips_dirty_mark"},
    {Fault::kCoverageClaimsLastSeq, "coverage_claims_last_seq"},
    {Fault::kAeAdoptOnFirstDelta, "ae_adopt_on_first_delta"},
    {Fault::kAckOverstatesClock, "ack_overstates_clock"},
};

}  // namespace

std::string to_string(Fault f) {
  for (const auto& row : kNames) {
    if (row.fault == f) return row.name;
  }
  return "unknown";
}

bool fault_from_name(std::string_view name, Fault* out) {
  if (name.empty()) {
    *out = Fault::kNone;
    return true;
  }
  for (const auto& row : kNames) {
    if (name == row.name) {
      *out = row.fault;
      return true;
    }
  }
  return false;
}

const std::vector<FaultInfo>& fault_corpus() {
  // Gated seeds are curated by `ucfuzz sweep`: each listed seed is one
  // where the auditor detects the mutant today, so the CI gate turns a
  // silent detection regression into a red build. Shapes (restart /
  // three-way) steer random_fault_scenario toward the code path the
  // mutant lives on; detection rates on *unshaped* seeds are reported
  // by the campaign but not gated.
  static const std::vector<FaultInfo> corpus = {
      {Fault::kFoldAcksAcrossGaps,
       "fold_acks_across_gaps",
       "Gapped streams' acks are frozen out of the stability floor",
       "stability keeps folding acks from streams with a detected seq gap, "
       "so the floor passes entries anti-entropy has yet to redeliver",
       /*wants_restart=*/false, /*wants_three_way=*/false,
       {7, 8, 11}},
      {Fault::kMergeTiesByArrival,
       "merge_ties_by_arrival",
       "Arbitration is a total order: equal clocks break ties by pid",
       "equal-clock stamps sort in arrival order, so replicas that saw the "
       "tie in different orders replay different winners",
       /*wants_restart=*/false, /*wants_three_way=*/false,
       {12, 14, 16}},
      {Fault::kLwwTieSkew,
       "lww_tie_skew",
       "Every replica applies the same arbitration order",
       "odd-pid replicas invert the equal-clock pid tie-break, splitting "
       "the cluster into two arbitration regimes",
       /*wants_restart=*/false, /*wants_three_way=*/false,
       {3, 12, 14}},
      {Fault::kGcDuringCatchupSession,
       "gc_during_catchup_session",
       "GC pauses while a catch-up session is open",
       "the stability floor advances mid-sync, folding acks the joiner "
       "adopted before verifying the streams behind them",
       /*wants_restart=*/true, /*wants_three_way=*/true,
       {10, 27, 71}},
      {Fault::kInstallSkipsSuffix,
       "install_skips_suffix",
       "Snapshot install = base state + replay of the unstable suffix",
       "install adopts the donor base but drops the suffix, losing every "
       "entry only the snapshot could deliver",
       /*wants_restart=*/true, /*wants_three_way=*/false,
       {6, 7, 9}},
      {Fault::kEchoSuppressThirdParty,
       "echo_suppress_third_party",
       "Echo suppression skips only entries the requester itself donated",
       "any key last advanced by a requester install is suppressed wholesale, "
       "dropping third-party content that rode in since the baseline",
       /*wants_restart=*/false, /*wants_three_way=*/true,
       {65, 108, 142}},
      {Fault::kInstallSkipsDirtyMark,
       "install_skips_dirty_mark",
       "Installed keys join the dirty set so deltas relay them onward",
       "keys learned from a donor are never marked dirty, so this store's "
       "deltas omit second-hand knowledge and relays stop at one hop",
       /*wants_restart=*/false, /*wants_three_way=*/true,
       {16, 50, 51}},
      {Fault::kCoverageClaimsLastSeq,
       "coverage_claims_last_seq",
       "Coverage claims only the proven contiguous prefix of a stream",
       "coverage advertises last_seq over holes and counts gapped streams "
       "as drained, so joiners verify streams never fully shipped to them",
       /*wants_restart=*/true, /*wants_three_way=*/false,
       {101, 136, 137}},
      {Fault::kAeAdoptOnFirstDelta,
       "ae_adopt_on_first_delta",
       "AE adopts peer coverage/stability rows only after a complete round",
       "rows are adopted on the round's first delta, vouching for shards "
       "still in flight",
       /*wants_restart=*/false, /*wants_three_way=*/false,
       {5, 7, 8}},
      {Fault::kAckOverstatesClock,
       "ack_overstates_clock",
       "An ack vouches only for stamps this store has already broadcast",
       "acks claim clock+1, letting receivers fold the floor past an "
       "in-flight entry and absorb it below the floor when it lands",
       /*wants_restart=*/false, /*wants_three_way=*/false,
       {1, 10, 20}},
  };
  return corpus;
}

const FaultInfo* fault_info(Fault f) {
  for (const auto& info : fault_corpus()) {
    if (info.fault == f) return &info;
  }
  return nullptr;
}

}  // namespace ucw
