// The mutation corpus switch: one FaultSpec on StoreConfig selects one
// deliberately broken store variant.
//
// Each Fault is a small, documented perversion of exactly one invariant
// the recovery/anti-entropy/arbitration stack depends on (see the
// mutation-corpus table in ARCHITECTURE.md "Consistency auditing").
// The corpus exists to certify the certifier: the black-box auditor
// (src/audit/) must detect every mutant on its gated scenario seeds and
// must never refute the clean control arm. `tools/ucfuzz.cpp` sweeps
// seeds × mutants × clean through record→certify→shrink and reports the
// detection rates.
//
// These switches are TEST-ONLY bug injection. Never set a fault outside
// the audit/fuzz pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ucw {

enum class Fault : std::uint8_t {
  kNone = 0,
  /// The PR 7 original: stability observes acks from streams with a
  /// detected seq gap, so GC folds the floor over entries anti-entropy
  /// has yet to redeliver and the repair is absorbed below the floor.
  kFoldAcksAcrossGaps,
  /// Non-commutative merge: equal-clock stamps are ordered by arrival
  /// instead of by the pid tie-break, so replicas that received the
  /// tied updates in different orders replay different arbitration
  /// orders — merging logs A∪B no longer equals B∪A.
  kMergeTiesByArrival,
  /// Mixed-version arbitration skew: odd-pid replicas invert the
  /// equal-clock pid tie-break (the classic rolling-upgrade bug where
  /// v2 "fixed" the comparator). The cluster no longer shares one
  /// total order, so any tie that decides a key's final value diverges.
  kLwwTieSkew,
  /// GC floor advanced past an open catch-up session: the fold pause
  /// that makes mid-sync stability rows untrustworthy is skipped, so a
  /// guarding joiner folds over entries of streams it has not verified.
  kGcDuringCatchupSession,
  /// Snapshot install adopts the donor base but never replays the
  /// unstable suffix, losing every entry that only the snapshot could
  /// have delivered.
  kInstallSkipsSuffix,
  /// Echo suppression collapses provenance: any key whose *last*
  /// advance was installed from the requester is skipped in a delta,
  /// even when third-party content rode in since the requester's
  /// baseline — the relay that lets one representative reconcile a
  /// whole partition side silently drops it.
  kEchoSuppressThirdParty,
  /// Installed knowledge is not marked dirty: deltas served from this
  /// store omit everything it learned second-hand, so snapshot/AE
  /// relays never propagate past one hop.
  kInstallSkipsDirtyMark,
  /// Stream coverage claims `last_seq` (the pre-partition FIFO
  /// shortcut) instead of the proven prefix, and calls gapped streams
  /// drained — a joiner then verifies streams whose hole entries
  /// nobody ever shipped it.
  kCoverageClaimsLastSeq,
  /// Anti-entropy adopts the peer's coverage and stability rows from
  /// the first delta of a round instead of waiting for the complete
  /// batch, vouching for data still in flight in the round's remaining
  /// shards.
  kAeAdoptOnFirstDelta,
  /// Acks overstate the clock by one: an envelope vouches for a stamp
  /// this store may be about to issue but has not broadcast, so a
  /// receiver can fold its floor past the in-flight entry and absorb
  /// it as a redelivery when it lands.
  kAckOverstatesClock,
};

/// The single switch StoreConfig carries. A struct (not a bare enum) so
/// call sites read `config.fault.is(Fault::k…)` and future corpus
/// extensions (fault parameters, multi-fault sets) stay source-stable.
struct FaultSpec {
  Fault fault = Fault::kNone;

  [[nodiscard]] constexpr bool is(Fault f) const { return fault == f; }
  [[nodiscard]] constexpr bool none() const { return fault == Fault::kNone; }
};

/// Stable wire name of a fault ("none" for the clean store) — what
/// ScenarioSpec JSON and the history meta header record.
[[nodiscard]] std::string to_string(Fault f);

/// Parses a wire name ("" and "none" both mean no fault). Returns false
/// on an unknown name.
[[nodiscard]] bool fault_from_name(std::string_view name, Fault* out);

/// One corpus entry: the mutant, its wire name, the invariant it
/// perverts, what the auditor is expected to report, the scenario shape
/// that makes it bite, and the curated seeds the CI gate runs.
struct FaultInfo {
  Fault fault = Fault::kNone;
  const char* name = "";
  /// The ARCHITECTURE.md invariant the mutant violates.
  const char* invariant = "";
  /// What the perversion does, one line.
  const char* summary = "";
  /// Scenario shaping: the fault needs a crash/restart in the schedule
  /// to be reachable (recovery-path mutants)…
  bool wants_restart = false;
  /// …or three-way splits (relay/echo mutants need a third party).
  bool wants_three_way = false;
  /// Seeds on which the campaign gate demands detection (curated by
  /// sweeping `random_fault_scenario`; every listed seed detects —
  /// that is what `ucfuzz campaign --gate` re-verifies in CI).
  std::vector<std::uint64_t> gated_seeds{};
};

/// The mutation corpus, in stable order (kNone excluded).
[[nodiscard]] const std::vector<FaultInfo>& fault_corpus();

/// Corpus lookup by fault; nullptr for kNone/unknown.
[[nodiscard]] const FaultInfo* fault_info(Fault f);

}  // namespace ucw
