#include "runtime/set_family.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;

/// Cluster over an op-based CRDT replica R exposing local_insert /
/// local_remove / read / approx_bytes.
template <typename R>
class CrdtSetCluster final : public SetCluster {
 public:
  CrdtSetCluster(SimScheduler& scheduler, std::size_t n, std::uint64_t seed,
                 LatencyModel latency, bool fifo) {
    typename SimNetwork<typename R::Message>::Config cfg;
    cfg.n_processes = n;
    cfg.latency = latency;
    cfg.fifo_links = fifo;
    cfg.seed = seed;
    net_ = std::make_unique<SimNetwork<typename R::Message>>(scheduler, cfg);
    for (ProcessId p = 0; p < n; ++p) {
      nodes_.push_back(std::make_unique<Node>(*net_, p));
    }
  }

  [[nodiscard]] AnySetNode& node(ProcessId p) override { return *nodes_[p]; }
  [[nodiscard]] std::size_t size() const override { return nodes_.size(); }
  [[nodiscard]] NetworkStats net_stats() const override {
    return net_->stats();
  }
  [[nodiscard]] std::size_t approx_bytes(ProcessId p) const override {
    return nodes_[p]->object->approx_bytes();
  }

 private:
  struct Node final : AnySetNode {
    Node(SimNetwork<typename R::Message>& net, ProcessId p)
        : object(net, p) {}
    void insert(int v) override { object.emit(object->local_insert(v)); }
    void remove(int v) override { object.emit(object->local_remove(v)); }
    [[nodiscard]] std::set<int> read() override { return object->read(); }
    SimCrdtObject<R> object;
  };

  std::unique_ptr<SimNetwork<typename R::Message>> net_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

class UcSetCluster final : public SetCluster {
 public:
  UcSetCluster(SimScheduler& scheduler, std::size_t n, std::uint64_t seed,
               LatencyModel latency, bool fifo) {
    typename SimNetwork<UpdateMessage<S>>::Config cfg;
    cfg.n_processes = n;
    cfg.latency = latency;
    cfg.fifo_links = fifo;
    cfg.seed = seed;
    net_ = std::make_unique<SimNetwork<UpdateMessage<S>>>(scheduler, cfg);
    for (ProcessId p = 0; p < n; ++p) {
      nodes_.push_back(std::make_unique<Node>(*net_, p));
    }
  }

  [[nodiscard]] AnySetNode& node(ProcessId p) override { return *nodes_[p]; }
  [[nodiscard]] std::size_t size() const override { return nodes_.size(); }
  [[nodiscard]] NetworkStats net_stats() const override {
    return net_->stats();
  }
  [[nodiscard]] std::size_t approx_bytes(ProcessId p) const override {
    return nodes_[p]->object.replica().approx_bytes();
  }

 private:
  struct Node final : AnySetNode {
    Node(SimNetwork<UpdateMessage<S>>& net, ProcessId p)
        : object(S{}, p, net) {}
    void insert(int v) override { (void)object.update(S::insert(v)); }
    void remove(int v) override { (void)object.update(S::remove(v)); }
    [[nodiscard]] std::set<int> read() override {
      return object.query(S::read());
    }
    SimUcObject<S> object;
  };

  std::unique_ptr<SimNetwork<UpdateMessage<S>>> net_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

class PipelinedSetCluster final : public SetCluster {
 public:
  PipelinedSetCluster(SimScheduler& scheduler, std::size_t n,
                      std::uint64_t seed, LatencyModel latency, bool fifo) {
    using M = PipelinedReplica<S>::Message;
    typename SimNetwork<M>::Config cfg;
    cfg.n_processes = n;
    cfg.latency = latency;
    cfg.fifo_links = fifo;
    cfg.seed = seed;
    net_ = std::make_unique<SimNetwork<M>>(scheduler, cfg);
    for (ProcessId p = 0; p < n; ++p) {
      nodes_.push_back(std::make_unique<Node>(*net_, p));
    }
  }

  [[nodiscard]] AnySetNode& node(ProcessId p) override { return *nodes_[p]; }
  [[nodiscard]] std::size_t size() const override { return nodes_.size(); }
  [[nodiscard]] NetworkStats net_stats() const override {
    return net_->stats();
  }
  [[nodiscard]] std::size_t approx_bytes(ProcessId) const override {
    return sizeof(std::set<int>);
  }

 private:
  struct Node final : AnySetNode {
    Node(SimNetwork<PipelinedReplica<S>::Message>& net, ProcessId p)
        : replica(S{}, p), net_(&net) {
      net.set_handler(p, [this](ProcessId from,
                                const PipelinedReplica<S>::Message& m) {
        replica.apply(from, m);
      });
    }
    void insert(int v) override {
      net_->broadcast(replica.pid(), replica.local_update(S::insert(v)));
    }
    void remove(int v) override {
      net_->broadcast(replica.pid(), replica.local_update(S::remove(v)));
    }
    [[nodiscard]] std::set<int> read() override {
      return replica.query(S::read());
    }
    PipelinedReplica<S> replica;
    SimNetwork<PipelinedReplica<S>::Message>* net_;
  };

  std::unique_ptr<SimNetwork<PipelinedReplica<S>::Message>> net_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace

std::unique_ptr<SetCluster> SetCluster::make(SetImplKind kind,
                                             SimScheduler& scheduler,
                                             std::size_t n_processes,
                                             std::uint64_t seed,
                                             LatencyModel latency,
                                             bool fifo_links) {
  switch (kind) {
    case SetImplKind::UcSet:
      return std::make_unique<UcSetCluster>(scheduler, n_processes, seed,
                                            latency, fifo_links);
    case SetImplKind::OrSet:
      return std::make_unique<CrdtSetCluster<OrSetReplica<int>>>(
          scheduler, n_processes, seed, latency, fifo_links);
    case SetImplKind::TwoPhaseSet:
      return std::make_unique<CrdtSetCluster<TwoPhaseSetReplica<int>>>(
          scheduler, n_processes, seed, latency, fifo_links);
    case SetImplKind::PnSet:
      return std::make_unique<CrdtSetCluster<PnSetReplica<int>>>(
          scheduler, n_processes, seed, latency, fifo_links);
    case SetImplKind::LwwSet:
      return std::make_unique<CrdtSetCluster<LwwSetReplica<int>>>(
          scheduler, n_processes, seed, latency, fifo_links);
    case SetImplKind::Pipelined:
      return std::make_unique<PipelinedSetCluster>(scheduler, n_processes,
                                                   seed, latency, fifo_links);
  }
  UCW_CHECK_MSG(false, "unknown SetImplKind");
  return nullptr;
}

}  // namespace ucw
