// End-to-end simulation harness for the UCStore.
//
// The multi-key sibling of run_uc_simulation: builds a scheduler +
// envelope network + N SimUcStores, drives a zipfian keyed workload with
// per-process think times, ticks a periodic flush (the "per-tick batch
// envelope"), optionally injects crashes and duplicate delivery,
// quiesces (final flush + drain), and checks per-key convergence across
// the surviving stores. The store benchmarks, the batched-vs-unbatched
// property test, and the reworked KV example all run on this engine.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/scheduler.hpp"
#include "net/sim_network.hpp"
#include "runtime/keyspace.hpp"
#include "runtime/sim_harness.hpp"
#include "store/all.hpp"

namespace ucw {

struct StoreRunConfig {
  std::size_t n_processes = 4;
  std::uint64_t seed = 1;
  LatencyModel latency = LatencyModel::exponential(1000.0);
  bool fifo_links = false;
  double duplicate_probability = 0.0;
  /// Keyspace: zipfian over n_keys with the given skew (0 = uniform).
  std::size_t n_keys = 64;
  double skew = 0.99;
  std::size_t ops_per_process = 100;
  double update_ratio = 0.9;  ///< else a keyed query is issued
  LatencyModel think_time = LatencyModel::exponential(200.0);
  StoreConfig store{};
  /// Virtual µs between flush ticks; 0 disables the tick (batches then
  /// ship only when the window fills or at quiescence).
  SimTime flush_period = 1'000.0;
  std::vector<CrashPlan> crashes{};
  SimTime drain_margin = 1.0;
};

template <UqAdt A>
struct StoreRunOutput {
  NetworkStats net;
  std::vector<StoreStats> store_stats;        ///< per process
  std::uint64_t total_updates = 0;
  std::uint64_t total_queries = 0;
  std::size_t keys_touched = 0;               ///< union across alive stores
  bool converged = false;                     ///< per-key, alive stores
  /// Final per-key states of the lowest-pid surviving store (the values
  /// everyone converged on when `converged`).
  std::map<std::string, typename A::State> final_states;
  SimTime duration = 0.0;
};

/// Runs one multi-key simulation. `gen` draws the next update for a
/// process: gen(rng) -> A::Update; the key is drawn zipfian per op.
template <UqAdt A, typename GenFn>
[[nodiscard]] StoreRunOutput<A> run_store_simulation(
    A adt, const StoreRunConfig& cfg, GenFn gen) {
  using Store = SimUcStore<A>;
  using Envelope = typename Store::Envelope;

  SimScheduler scheduler;
  typename SimNetwork<Envelope>::Config net_cfg;
  net_cfg.n_processes = cfg.n_processes;
  net_cfg.latency = cfg.latency;
  net_cfg.fifo_links = cfg.fifo_links;
  net_cfg.duplicate_probability = cfg.duplicate_probability;
  net_cfg.seed = cfg.seed;
  SimNetwork<Envelope> net(scheduler, net_cfg);

  std::vector<std::unique_ptr<Store>> stores;
  stores.reserve(cfg.n_processes);
  for (ProcessId p = 0; p < cfg.n_processes; ++p) {
    stores.push_back(std::make_unique<Store>(adt, p, net, cfg.store));
  }

  ZipfianKeys keyspace(cfg.n_keys, cfg.skew);
  Rng root(cfg.seed);
  StoreRunOutput<A> out;

  // Per-process operation schedules (heap-anchored closures, same
  // pattern as run_uc_simulation).
  std::vector<std::shared_ptr<std::function<void(std::size_t)>>> issuers;
  for (ProcessId p = 0; p < cfg.n_processes; ++p) {
    auto rng = std::make_shared<Rng>(root.fork(p + 1));
    auto issue = std::make_shared<std::function<void(std::size_t)>>();
    *issue = [&, p, rng, issue](std::size_t remaining) {
      if (remaining == 0 || net.crashed(p)) return;
      const std::string key = keyspace.sample(*rng);
      if (rng->chance(cfg.update_ratio)) {
        ++out.total_updates;
        (void)stores[p]->update(key, gen(*rng));
      } else {
        ++out.total_queries;
        (void)stores[p]->query(key, typename A::QueryIn{});
      }
      scheduler.after(cfg.think_time.sample(*rng),
                      [issue, remaining] { (*issue)(remaining - 1); });
    };
    issuers.push_back(issue);
    scheduler.after(cfg.think_time.sample(*rng),
                    [issue, n = cfg.ops_per_process] { (*issue)(n); });
  }

  for (const CrashPlan& crash : cfg.crashes) {
    scheduler.at(crash.at, [&net, pid = crash.pid] { net.crash(pid); });
  }

  // Periodic flush tick: every store ships its pending batch. The chain
  // stays alive while anything else is scheduled (workload, deliveries).
  auto tick = std::make_shared<std::function<void()>>();
  if (cfg.flush_period > 0.0) {
    *tick = [&, tick]() {
      for (auto& s : stores) (void)s->flush();
      if (scheduler.pending() > 0) scheduler.after(cfg.flush_period, *tick);
    };
    scheduler.after(cfg.flush_period, *tick);
  }

  scheduler.run();
  // Quiescence: ship any trailing partial batches, then drain.
  for (auto& s : stores) (void)s->flush();
  scheduler.run();
  scheduler.run_until(scheduler.now() + cfg.drain_margin);
  for (auto& i : issuers) *i = nullptr;
  *tick = nullptr;

  // Per-key convergence across the surviving stores.
  std::set<std::string> keys;
  std::vector<ProcessId> alive;
  for (ProcessId p = 0; p < cfg.n_processes; ++p) {
    if (net.crashed(p)) continue;
    alive.push_back(p);
    for (auto& k : stores[p]->keys()) keys.insert(k);
  }
  out.converged = !alive.empty();
  for (const std::string& k : keys) {
    if (alive.empty()) break;
    const typename A::State s0 = stores[alive.front()]->state_of(k);
    for (std::size_t i = 1; i < alive.size(); ++i) {
      if (!(stores[alive[i]]->state_of(k) == s0)) {
        out.converged = false;
      }
    }
    out.final_states.emplace(k, s0);
  }
  out.keys_touched = keys.size();
  out.net = net.stats();
  for (auto& s : stores) out.store_stats.push_back(s->stats());
  out.duration = scheduler.now();
  return out;
}

}  // namespace ucw
