// End-to-end simulation harness for the UCStore.
//
// The multi-key sibling of run_uc_simulation: builds a scheduler +
// envelope network + N SimUcStores, drives a zipfian keyed workload with
// per-process think times, ticks a periodic flush (the "per-tick batch
// envelope" — which is also the recovery tick: stability acks, GC folds,
// catch-up retries), optionally injects crashes, *restarts* (the crashed
// process rejoins with empty state and catches up from a live donor via
// snapshot shipping), and duplicate delivery, quiesces (final flush +
// drain, with extra rounds so multi-round catch-up retries settle), and
// checks per-key convergence across the surviving stores — including the
// rejoined ones, which must agree with replicas that never crashed. The
// store benchmarks, the property tests, and the reworked KV example all
// run on this engine.
//
// Partitions: PartitionPlans script drop-mode topology changes. At each
// plan the network is re-cut (an all-zero map is a heal), and for every
// pair of processes the change *reconnects*, the harness schedules
// anti-entropy pulls: each process runs one anti_entropy_round against
// the lowest-pid live representative of each group it just regained —
// the representative holds everything its side produced (intra-group
// traffic kept flowing), so one delta exchange per (process, regained
// group) reconciles the whole split. A run whose last plan leaves the
// network split is healed (plus one AE sweep) before the quiesce
// barrier, so the convergence check always speaks for a connected
// cluster.
#pragma once

#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "audit/recorder.hpp"
#include "history/jsonl.hpp"
#include "net/scheduler.hpp"
#include "net/sim_network.hpp"
#include "obs/report.hpp"
#include "obs/trace_export.hpp"
#include "runtime/keyspace.hpp"
#include "runtime/sim_harness.hpp"
#include "store/all.hpp"

namespace ucw {

/// Crash-recover rejoin: at `at`, the (crashed) process comes back with
/// empty state, requests a sync from the lowest-pid live donor, and —
/// once its clock is re-based by the first snapshot — resumes issuing
/// `resume_ops` further operations. The restart waits for the old
/// incarnation's in-flight messages to drain (the failure-detector
/// assumption restart soundness needs), retrying on the flush period.
struct RestartPlan {
  ProcessId pid = 0;
  SimTime at = 0.0;
  std::size_t resume_ops = 0;
};

/// Drop-mode topology change at `at`: processes with equal group ids
/// can talk, cross-group messages are dropped. All-zero = heal. An
/// asymmetric heal is two plans: {0,0,1} merging {A,B} first, then
/// all-zero bringing C back. With `anti_entropy` (default), every
/// newly-reconnected process pair triggers the representative AE pull
/// described in the header comment, `ae_delay` after the cut.
struct PartitionPlan {
  SimTime at = 0.0;
  std::vector<std::size_t> group_of{};
  bool anti_entropy = true;
  SimTime ae_delay = 1.0;
  /// 0 = drop mode (messages lost at the cut). Positive = hold→drop
  /// escalation: cross-group messages buffer for this much virtual time
  /// from their send, then drop if the split still holds — a heal
  /// inside the window costs only delay (see SimNetwork).
  SimTime escalation_grace = 0.0;
};

struct StoreRunConfig {
  std::size_t n_processes = 4;
  std::uint64_t seed = 1;
  LatencyModel latency = LatencyModel::exponential(1000.0);
  bool fifo_links = false;
  double duplicate_probability = 0.0;
  /// Keyspace: zipfian over n_keys with the given skew (0 = uniform).
  std::size_t n_keys = 64;
  double skew = 0.99;
  std::size_t ops_per_process = 100;
  /// When non-empty, per-process op counts overriding ops_per_process —
  /// the schedule shrinker's handle for trimming one process's workload
  /// at a time. Size must be n_processes when set.
  std::vector<std::size_t> ops_per_process_override{};
  double update_ratio = 0.9;  ///< else a keyed query is issued
  LatencyModel think_time = LatencyModel::exponential(200.0);
  StoreConfig store{};
  /// Virtual µs between flush ticks; 0 disables the tick (batches then
  /// ship only when the window fills or at quiescence).
  SimTime flush_period = 1'000.0;
  std::vector<CrashPlan> crashes{};
  std::vector<RestartPlan> restarts{};
  std::vector<PartitionPlan> partitions{};
  SimTime drain_margin = 1.0;
  /// Hard virtual-time ceiling on the whole run; 0 = unbounded. A
  /// *correct* store quiesces long before any sane ceiling, but a
  /// fault-injected one (src/faults/) can livelock recovery — e.g. an
  /// anti-entropy retry loop whose repair the mutant suppresses forever
  /// — and an event-driven run() would never drain. The audit/fuzz
  /// pipeline sets this so a livelocked mutant run still terminates,
  /// final-reads its diverged states, and gets refuted.
  SimTime sim_horizon = 0.0;
  /// Chrome trace_event JSON path; non-empty turns tracing on (one
  /// tracer per process on the virtual-time axis — a restart keeps
  /// appending to the same pid's tracks, so one trace holds the whole
  /// crash/recover timeline) and writes the file at the end of the run.
  std::string trace_out{};
  /// Metrics-snapshot JSON path ({"processes":[…],"net":{…}}); also
  /// turns the derived convergence metrics on.
  std::string metrics_out{};
  /// Op-history JSONL path for the audit pipeline; non-empty turns
  /// recording on (int64-register-like ADTs only — see
  /// history/jsonl.hpp). Every client-visible op plus one post-
  /// quiescence "final read" per (alive process, key) is captured.
  std::string history_out{};
  /// Record the history in memory (StoreRunOutput::history) without
  /// writing a file — what run_scenario audits in-process.
  bool record_history = false;
  /// Recorder ring capacity per process; overflow drops the newest
  /// records and is reported (the auditor then refuses to certify).
  std::size_t history_capacity = std::size_t{1} << 20;
};

template <UqAdt A>
struct StoreRunOutput {
  NetworkStats net;
  std::vector<StoreStats> store_stats;        ///< per process
  /// Per process, per shard engine — exposes the per-engine view
  /// (chosen adaptive batch window, GC folds, resident log) the
  /// aggregate StoreStats rows flatten away.
  std::vector<std::vector<ShardStats>> shard_stats;
  std::uint64_t total_updates = 0;
  std::uint64_t total_queries = 0;
  std::size_t keys_touched = 0;               ///< union across alive stores
  bool converged = false;                     ///< per-key, alive stores
  /// Final per-key states of the lowest-pid surviving store (the values
  /// everyone converged on when `converged`).
  std::map<std::string, typename A::State> final_states;
  /// Keys on which some pair of alive stores disagreed (empty when
  /// `converged`; the debugging handle for the tests and benches).
  std::vector<std::string> diverged_keys;
  SimTime duration = 0.0;
  /// Resident log entries summed over alive stores at the end — with GC
  /// on, the unstable window; without, the whole history per replica.
  std::uint64_t log_entries_resident = 0;
  /// Full observability report (per-process stats + derived convergence
  /// metrics + network totals) — feed to obs::print_observability.
  obs::Report report;
  /// Recorded op history (populated when history_out/record_history is
  /// set and the ADT is int64-register-like; empty otherwise).
  HistoryFile history;
};

/// Runs one multi-key simulation. `gen` draws the next update for a
/// process: gen(rng) -> A::Update; the key is drawn zipfian per op.
template <UqAdt A, typename GenFn>
[[nodiscard]] StoreRunOutput<A> run_store_simulation(
    A adt, const StoreRunConfig& cfg, GenFn gen) {
  using Store = SimUcStore<A>;
  using Envelope = typename Store::Envelope;

  UCW_CHECK_MSG(!cfg.store.gc || cfg.fifo_links,
                "store-level stability tracking requires FIFO links");
  UCW_CHECK_MSG(cfg.restarts.empty() || cfg.fifo_links,
                "catch-up stream guarding requires FIFO links");
  UCW_CHECK_MSG(cfg.partitions.empty() || cfg.fifo_links,
                "partition coverage tracking requires FIFO links");

  SimScheduler scheduler;
  typename SimNetwork<Envelope>::Config net_cfg;
  net_cfg.n_processes = cfg.n_processes;
  net_cfg.latency = cfg.latency;
  net_cfg.fifo_links = cfg.fifo_links;
  net_cfg.duplicate_probability = cfg.duplicate_probability;
  net_cfg.seed = cfg.seed;
  SimNetwork<Envelope> net(scheduler, net_cfg);

  // Tracers live here, outside the stores, so a crash-restarted
  // incarnation keeps appending to the same pid's tracks and one trace
  // holds the whole timeline. The clock is the scheduler's virtual time
  // (already in µs), so spans line up with CrashPlan/PartitionPlan `at`s.
  const bool obs_on = cfg.store.tracing || !cfg.trace_out.empty() ||
                      !cfg.metrics_out.empty();
  std::vector<std::unique_ptr<obs::Tracer>> tracers;
  if (obs_on) {
    std::vector<obs::Tracer*> raw(cfg.n_processes, nullptr);
    for (ProcessId p = 0; p < cfg.n_processes; ++p) {
      tracers.push_back(std::make_unique<obs::Tracer>(
          static_cast<std::uint32_t>(p), /*tracks=*/1,
          /*ring_capacity_pow2=*/std::size_t{1} << 14,
          +[](void* s) { return static_cast<SimScheduler*>(s)->now(); },
          &scheduler));
      raw[p] = tracers.back().get();
    }
    net.set_tracers(std::move(raw));
  }
  auto store_config_for = [&](ProcessId p) {
    StoreConfig sc = cfg.store;
    if (obs_on) {
      sc.tracing = true;
      sc.tracer = tracers[p].get();
    }
    return sc;
  };

  // Op-history recorders (audit pipeline): like the tracers they live
  // here, outside the stores, so a restarted incarnation appends to the
  // same process's history — one recorded history spans the whole
  // crash/recover timeline. Sim stores are single-owner: one ring each.
  const bool record_on = cfg.record_history || !cfg.history_out.empty();
  std::vector<std::unique_ptr<audit::OpRecorder<A, std::string>>> recorders;
  if (record_on) {
    for (ProcessId p = 0; p < cfg.n_processes; ++p) {
      recorders.push_back(std::make_unique<audit::OpRecorder<A, std::string>>(
          p, /*threads=*/1, cfg.history_capacity,
          +[](void* s) { return static_cast<SimScheduler*>(s)->now(); },
          &scheduler));
    }
  }

  std::vector<std::unique_ptr<Store>> stores;
  stores.reserve(cfg.n_processes);
  for (ProcessId p = 0; p < cfg.n_processes; ++p) {
    stores.push_back(std::make_unique<Store>(adt, p, net, store_config_for(p)));
    if (record_on) stores[p]->set_recorder(recorders[p].get());
  }

  ZipfianKeys keyspace(cfg.n_keys, cfg.skew);
  Rng root(cfg.seed);
  StoreRunOutput<A> out;

  // Per-process operation schedules (heap-anchored closures, same
  // pattern as run_uc_simulation).
  std::vector<std::shared_ptr<std::function<void(std::size_t)>>> issuers;
  for (ProcessId p = 0; p < cfg.n_processes; ++p) {
    auto rng = std::make_shared<Rng>(root.fork(p + 1));
    auto issue = std::make_shared<std::function<void(std::size_t)>>();
    *issue = [&, p, rng, issue](std::size_t remaining) {
      if (remaining == 0 || net.crashed(p)) return;
      if (stores[p]->bootstrapping()) {
        // A rejoining store may not stamp updates until the first
        // snapshot re-bases its clock; try again next think time.
        scheduler.after(cfg.think_time.sample(*rng),
                        [issue, remaining] { (*issue)(remaining); });
        return;
      }
      const std::string key = keyspace.sample(*rng);
      if (rng->chance(cfg.update_ratio)) {
        ++out.total_updates;
        (void)stores[p]->update(key, gen(*rng));
      } else {
        ++out.total_queries;
        (void)stores[p]->query(key, typename A::QueryIn{});
      }
      scheduler.after(cfg.think_time.sample(*rng),
                      [issue, remaining] { (*issue)(remaining - 1); });
    };
    issuers.push_back(issue);
    const std::size_t n_ops = cfg.ops_per_process_override.empty()
                                  ? cfg.ops_per_process
                                  : cfg.ops_per_process_override.at(p);
    scheduler.after(cfg.think_time.sample(*rng),
                    [issue, n = n_ops] { (*issue)(n); });
  }

  for (const CrashPlan& crash : cfg.crashes) {
    scheduler.at(crash.at, [&net, pid = crash.pid] { net.crash(pid); });
  }

  // Crash-recover rejoins: wait for the old incarnation to drain, then
  // bring the pid back with a fresh (empty) store and start catch-up.
  const SimTime retry_period =
      cfg.flush_period > 0.0 ? cfg.flush_period : 500.0;
  std::vector<std::shared_ptr<std::function<void()>>> restarters;
  for (const RestartPlan& plan : cfg.restarts) {
    UCW_CHECK(plan.pid < cfg.n_processes);
    auto fn = std::make_shared<std::function<void()>>();
    auto tries = std::make_shared<std::size_t>(0);
    *fn = [&, plan, fn, tries, retry_period] {
      if (!net.can_restart(plan.pid)) {
        // A plan that never becomes restartable (pid never crashed, or
        // an in-flight horizon that outlives the run) must fail loudly
        // rather than keep the scheduler alive forever.
        UCW_CHECK_MSG(++*tries < 100'000,
                      "RestartPlan never became restartable: pair it "
                      "with a CrashPlan for the same pid");
        scheduler.after(retry_period, [fn] { (*fn)(); });
        return;
      }
      net.restart(plan.pid);
      stores[plan.pid] =
          std::make_unique<Store>(stores[plan.pid]->adt(), plan.pid, net,
                                  store_config_for(plan.pid));
      if (!recorders.empty()) {
        stores[plan.pid]->set_recorder(recorders[plan.pid].get());
      }
      ProcessId donor = plan.pid;
      for (ProcessId q = 0; q < cfg.n_processes; ++q) {
        if (q != plan.pid && !net.crashed(q)) {
          donor = q;
          break;
        }
      }
      if (donor != plan.pid) {
        (void)stores[plan.pid]->request_sync(donor);
      }
      if (plan.resume_ops > 0) {
        scheduler.after(cfg.think_time.sample(root),
                        [issue = issuers[plan.pid], n = plan.resume_ops] {
                          (*issue)(n);
                        });
      }
    };
    restarters.push_back(fn);
    scheduler.at(plan.at, [fn] { (*fn)(); });
  }

  // Scripted drop-mode topology changes. `groups` tracks the applied
  // topology so each plan can tell which pairs it *reconnects*; those
  // get the representative anti-entropy pulls (one per process per
  // regained former group), scheduled ae_delay after the cut.
  auto groups =
      std::make_shared<std::vector<std::size_t>>(cfg.n_processes, 0);
  auto apply_topology = [&net, &scheduler, &stores, groups, n = cfg.n_processes](
                            const std::vector<std::size_t>& group_of,
                            bool anti_entropy, SimTime ae_delay,
                            SimTime escalation_grace) {
    UCW_CHECK_MSG(group_of.size() == n,
                  "PartitionPlan group map size != n_processes");
    const std::vector<std::size_t> before = *groups;
    *groups = group_of;
    if (escalation_grace > 0.0) {
      net.partition_escalating(group_of, escalation_grace);
    } else {
      net.partition(group_of);
    }
    if (!anti_entropy) return;
    for (ProcessId p = 0; p < n; ++p) {
      if (net.crashed(p)) continue;
      // Lowest-pid live representative of each former group p regained.
      std::map<std::size_t, ProcessId> reps;
      for (ProcessId q = 0; q < n; ++q) {
        if (q == p || net.crashed(q)) continue;
        const bool was_connected = before[p] == before[q];
        const bool now_connected = group_of[p] == group_of[q];
        if (was_connected || !now_connected) continue;
        if (reps.count(before[q]) == 0) reps.emplace(before[q], q);
      }
      for (const auto& [g, rep] : reps) {
        (void)g;
        scheduler.after(ae_delay, [&stores, p, rep] {
          // One-directional pull: every process initiates its own, so
          // reciprocation would only double the traffic. Refused (and
          // skipped) while p is mid-catch-up — the session's own retry
          // machinery recovers it across the heal.
          (void)stores[p]->anti_entropy_round(rep, /*reciprocate=*/false);
        });
      }
    }
  };
  for (const PartitionPlan& plan : cfg.partitions) {
    scheduler.at(plan.at, [&apply_topology, plan] {
      apply_topology(plan.group_of, plan.anti_entropy, plan.ae_delay,
                     plan.escalation_grace);
    });
  }

  // Periodic flush tick: every store ships its pending batch and runs
  // its recovery housekeeping. The chain stays alive while anything
  // else is scheduled (workload, deliveries, pending restarts).
  auto tick = std::make_shared<std::function<void()>>();
  if (cfg.flush_period > 0.0) {
    *tick = [&, tick]() {
      for (ProcessId p = 0; p < cfg.n_processes; ++p) {
        (void)stores[p]->flush();
      }
      if (scheduler.pending() > 0) scheduler.after(cfg.flush_period, *tick);
    };
    scheduler.after(cfg.flush_period, *tick);
  }

  // Event-driven run, optionally under the sim_horizon ceiling: once
  // the clock reaches the horizon, later events stay queued (each
  // rescheduling lands past it), so even a livelocked recovery loop
  // terminates and falls through to the final reads.
  const auto bounded_run = [&scheduler, &cfg] {
    if (cfg.sim_horizon > 0.0) {
      (void)scheduler.run_until(cfg.sim_horizon);
    } else {
      scheduler.run();
    }
  };
  bounded_run();
  // A run whose last plan left the network split must not fail the
  // convergence check for a partition that simply never healed: heal
  // it (with the anti-entropy sweep) before quiescing, mirroring what
  // any real operator of a partitionable deployment eventually gets.
  if (net.partitioned() || net.escalating()) {
    apply_topology(std::vector<std::size_t>(cfg.n_processes, 0),
                   /*anti_entropy=*/true, /*ae_delay=*/1.0,
                   /*escalation_grace=*/0.0);
    bounded_run();
  }
  // Quiescence: ship any trailing partial batches, then drain. Enough
  // rounds that even a *stalled* catch-up (lost request — e.g. the
  // donor crashed right after the restart) reaches its retry: the stall
  // fires after sync_patience_ticks housekeeping ticks, and the
  // request/serve/install exchange needs a few more. A gap retry needs
  // only one round (by now the donor holds everything). Extra rounds
  // are cheap no-ops.
  const int quiesce_rounds =
      static_cast<int>(cfg.store.sync_patience_ticks) + 4;
  for (int round = 0; round < quiesce_rounds; ++round) {
    for (auto& s : stores) (void)s->flush();
    bounded_run();
  }
  scheduler.run_until(scheduler.now() + cfg.drain_margin);
  for (auto& i : issuers) *i = nullptr;
  for (auto& r : restarters) *r = nullptr;
  *tick = nullptr;

  // Per-key convergence across the surviving stores.
  std::set<std::string> keys;
  std::vector<ProcessId> alive;
  for (ProcessId p = 0; p < cfg.n_processes; ++p) {
    if (net.crashed(p)) continue;
    alive.push_back(p);
    for (auto& k : stores[p]->keys()) keys.insert(k);
  }
  out.converged = !alive.empty();
  for (const std::string& k : keys) {
    if (alive.empty()) break;
    // These reads double as the history's ω-observations: one final
    // read per (alive process, key), recorded even (especially) when
    // the replicas disagree — the auditor refutes from the divergence.
    const typename A::State s0 = stores[alive.front()]->state_of(k);
    bool key_diverged = false;
    for (std::size_t i = 0; i < alive.size(); ++i) {
      const typename A::State si =
          i == 0 ? s0 : stores[alive[i]]->state_of(k);
      if (record_on) {
        recorders[alive[i]]->record_final_read(
            k, stores[alive[i]]->adt().output(si, typename A::QueryIn{}));
      }
      if (i > 0 && !(si == s0)) key_diverged = true;
    }
    if (key_diverged) {
      out.converged = false;
      out.diverged_keys.push_back(k);
    }
    out.final_states.emplace(k, s0);
  }
  out.keys_touched = keys.size();
  out.net = net.stats();
  for (ProcessId p = 0; p < cfg.n_processes; ++p) {
    out.store_stats.push_back(stores[p]->stats());
    out.shard_stats.push_back(stores[p]->shard_stats());
    if (!net.crashed(p)) {
      out.log_entries_resident += stores[p]->log_entries_resident();
    }
    out.report.processes.push_back(obs::make_process_report(*stores[p]));
  }
  out.report.net = out.net;
  out.duration = scheduler.now();

  if (record_on) {
    for (ProcessId p = 0; p < cfg.n_processes; ++p) {
      out.report.processes[p].history_records_captured =
          recorders[p]->captured() + recorders[p]->final_reads_recorded();
      out.report.processes[p].history_records_dropped =
          recorders[p]->dropped();
    }
    if constexpr (Int64RegisterLike<A>) {
      for (ProcessId p = 0; p < cfg.n_processes; ++p) {
        out.history.meta.captured += recorders[p]->captured();
        out.history.meta.dropped += recorders[p]->dropped();
        out.history.meta.final_reads += recorders[p]->final_reads_recorded();
        append_history_lines(*recorders[p], &out.history.lines);
      }
      out.history.meta.n_processes = cfg.n_processes;
      out.history.meta.seed = cfg.seed;
      out.history.meta.fault = to_string(cfg.store.fault.fault);
      if (!cfg.history_out.empty()) {
        std::ofstream f(cfg.history_out);
        UCW_CHECK_MSG(f.good(), "cannot open history_out for writing");
        write_history_jsonl(f, out.history.meta, out.history.lines);
      }
    } else {
      UCW_CHECK_MSG(cfg.history_out.empty(),
                    "history export requires an int64-register-like ADT");
    }
  }

  if (!cfg.trace_out.empty()) {
    std::vector<const obs::Tracer*> views;
    for (const auto& t : tracers) views.push_back(t.get());
    std::ofstream f(cfg.trace_out);
    UCW_CHECK_MSG(f.good(), "cannot open trace_out for writing");
    obs::write_chrome_trace(f, views);
  }
  if (!cfg.metrics_out.empty()) {
    std::ofstream f(cfg.metrics_out);
    UCW_CHECK_MSG(f.good(), "cannot open metrics_out for writing");
    obs::export_metrics_json(f, out.report);
  }
  return out;
}

}  // namespace ucw
