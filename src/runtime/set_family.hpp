// A uniform handle over every replicated-set implementation in the
// library, for the Section VI comparison experiments (E9).
//
// Each implementation keeps its own message type and network instance;
// the family erases those behind insert/remove/read so a single workload
// driver can run the identical schedule of operations against all of
// them and compare the converged states. Virtual dispatch costs nothing
// measurable next to the simulated network.
#pragma once

#include <array>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "adt/set.hpp"
#include "baselines/pipelined.hpp"
#include "core/uc_object.hpp"
#include "crdt/all.hpp"
#include "net/scheduler.hpp"
#include "net/sim_network.hpp"

namespace ucw {

enum class SetImplKind {
  UcSet,        ///< Algorithm 1 on SetAdt (this paper)
  OrSet,        ///< insert-wins observed-remove set
  TwoPhaseSet,  ///< white/black lists, no re-insertion
  PnSet,        ///< per-element counters (C-Set/PN-Set)
  LwwSet,       ///< per-element last-writer-wins
  Pipelined,    ///< apply-on-delivery (Section IV baseline)
};

[[nodiscard]] inline std::string to_string(SetImplKind k) {
  switch (k) {
    case SetImplKind::UcSet:
      return "UC-Set(Alg.1)";
    case SetImplKind::OrSet:
      return "OR-Set";
    case SetImplKind::TwoPhaseSet:
      return "2P-Set";
    case SetImplKind::PnSet:
      return "PN-Set";
    case SetImplKind::LwwSet:
      return "LWW-Set";
    case SetImplKind::Pipelined:
      return "Pipelined";
  }
  return "?";
}

inline constexpr std::array<SetImplKind, 6> kAllSetImpls = {
    SetImplKind::UcSet,     SetImplKind::OrSet,  SetImplKind::TwoPhaseSet,
    SetImplKind::PnSet,     SetImplKind::LwwSet, SetImplKind::Pipelined,
};

/// One replica's operations, implementation-erased.
class AnySetNode {
 public:
  virtual ~AnySetNode() = default;
  virtual void insert(int v) = 0;
  virtual void remove(int v) = 0;
  [[nodiscard]] virtual std::set<int> read() = 0;
};

/// N replicas of one implementation on a private simulated network.
class SetCluster {
 public:
  virtual ~SetCluster() = default;
  [[nodiscard]] virtual AnySetNode& node(ProcessId p) = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual NetworkStats net_stats() const = 0;
  [[nodiscard]] virtual std::size_t approx_bytes(ProcessId p) const = 0;

  /// True when every replica currently reads the same value.
  [[nodiscard]] bool converged() {
    const std::set<int> first = node(0).read();
    for (ProcessId p = 1; p < size(); ++p) {
      if (!(node(p).read() == first)) return false;
    }
    return true;
  }

  [[nodiscard]] static std::unique_ptr<SetCluster> make(
      SetImplKind kind, SimScheduler& scheduler, std::size_t n_processes,
      std::uint64_t seed, LatencyModel latency, bool fifo_links = false);
};

}  // namespace ucw
