// End-to-end simulation harness for Algorithm-1 objects.
//
// Builds a scheduler + network + N SimUcObjects, drives a randomized
// workload with per-process think times, optionally injects crashes and
// partitions, quiesces, issues the final reads (recorded as ω-queries —
// "the participants stopped updating, what do the replicas say now?"),
// and returns everything the experiments need: the recorded history and
// certificate, network statistics, per-replica statistics and the final
// states.
//
// This is experiment E3's engine and the substrate of E4-E8.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/uc_object.hpp"
#include "net/scheduler.hpp"
#include "net/sim_network.hpp"
#include "runtime/recorder.hpp"
#include "runtime/workload.hpp"

namespace ucw {

struct CrashPlan {
  ProcessId pid = 0;
  SimTime at = 0.0;
};

struct RunConfig {
  std::size_t n_processes = 4;
  std::uint64_t seed = 1;
  LatencyModel latency = LatencyModel::exponential(1000.0);
  bool fifo_links = false;
  double duplicate_probability = 0.0;  ///< at-least-once injection
  WorkloadConfig workload{};
  ReplayPolicy policy = ReplayPolicy::CachedPrefix;
  std::size_t snapshot_interval = 64;
  std::vector<CrashPlan> crashes{};
  bool enable_gc = false;            ///< requires fifo_links
  SimTime gc_period = 5'000.0;       ///< virtual µs between GC sweeps
  /// Quiescence margin after the last scheduled op before final reads.
  SimTime drain_margin = 1.0;
};

template <UqAdt A>
struct RunOutput {
  History<A> history;
  RunCertificate certificate;
  NetworkStats net;
  std::vector<typename A::State> final_states;  ///< alive replicas only
  bool converged = false;
  std::vector<ReplicaStats> replica_stats;
  SimTime duration = 0.0;
};

/// Runs one simulation. `gen` draws the next update for a process:
/// gen(rng) -> A::Update. Queries are interleaved per workload ratio.
template <UqAdt A, typename GenFn>
[[nodiscard]] RunOutput<A> run_uc_simulation(A adt, const RunConfig& cfg,
                                             GenFn gen) {
  UCW_CHECK_MSG(!cfg.enable_gc || cfg.fifo_links,
                "stability tracking requires FIFO links (see DESIGN.md)");
  SimScheduler scheduler;
  typename SimNetwork<UpdateMessage<A>>::Config net_cfg;
  net_cfg.n_processes = cfg.n_processes;
  net_cfg.latency = cfg.latency;
  net_cfg.fifo_links = cfg.fifo_links;
  net_cfg.duplicate_probability = cfg.duplicate_probability;
  net_cfg.seed = cfg.seed;
  SimNetwork<UpdateMessage<A>> net(scheduler, net_cfg);

  typename ReplayReplica<A>::Config rep_cfg;
  rep_cfg.policy = cfg.policy;
  rep_cfg.snapshot_interval = cfg.snapshot_interval;

  std::vector<std::unique_ptr<SimUcObject<A>>> objects;
  objects.reserve(cfg.n_processes);
  for (ProcessId p = 0; p < cfg.n_processes; ++p) {
    objects.push_back(
        std::make_unique<SimUcObject<A>>(adt, p, net, rep_cfg));
    if (cfg.enable_gc) {
      objects.back()->replica().enable_stability(cfg.n_processes);
    }
  }

  HistoryRecorder<A> recorder(adt, cfg.n_processes);
  Rng root(cfg.seed);

  // Per-process operation schedules: think times drawn from each
  // process's private stream. The issuing closures are heap-anchored so
  // the scheduler may call them long after this loop scope ends.
  //
  // The harness uses A::QueryIn{} as "the" read — every bundled ADT with
  // a single parameterless query satisfies this.
  std::vector<std::shared_ptr<std::function<void(std::size_t)>>> issuers;
  for (ProcessId p = 0; p < cfg.n_processes; ++p) {
    auto rng = std::make_shared<Rng>(root.fork(p + 1));
    auto issue = std::make_shared<std::function<void(std::size_t)>>();
    *issue = [&, p, rng, issue](std::size_t remaining) {
      if (remaining == 0 || net.crashed(p)) return;
      auto& obj = *objects[p];
      if (rng->chance(cfg.workload.update_ratio)) {
        auto u = gen(*rng);
        const auto msg = obj.replica().local_update(u);
        auto visible = obj.replica().visible_stamps();
        visible.push_back(msg.stamp);
        recorder.record_update(p, msg.stamp, u, std::move(visible));
        net.broadcast(p, msg);
      } else {
        // Query with a fresh stamp and the currently visible log.
        auto visible = obj.replica().visible_stamps();
        auto [qout, stamp] =
            obj.replica().query_with_stamp(typename A::QueryIn{});
        recorder.record_query(p, stamp, typename A::QueryIn{}, qout,
                              std::move(visible), false);
      }
      scheduler.after(cfg.workload.think_time.sample(*rng),
                      [issue, remaining] { (*issue)(remaining - 1); });
    };
    issuers.push_back(issue);
    scheduler.after(cfg.workload.think_time.sample(*rng),
                    [issue, n = cfg.workload.ops_per_process] {
                      (*issue)(n);
                    });
  }

  for (const CrashPlan& crash : cfg.crashes) {
    scheduler.at(crash.at, [&net, pid = crash.pid] { net.crash(pid); });
  }

  auto sweep = std::make_shared<std::function<void()>>();
  if (cfg.enable_gc) {
    *sweep = [&, sweep]() {
      for (auto& obj : objects) {
        (void)obj->replica().collect_garbage();
      }
      if (scheduler.pending() > 0) {
        scheduler.after(cfg.gc_period, *sweep);
      }
    };
    scheduler.after(cfg.gc_period, *sweep);
  }

  scheduler.run();
  scheduler.run_until(scheduler.now() + cfg.drain_margin);
  // Break the self-referential closure cycles now that the run is over.
  for (auto& i : issuers) *i = nullptr;
  *sweep = nullptr;

  RunOutput<A> out{
      .history = History<A>(adt, {}, cfg.n_processes),
      .certificate = {},
      .net = net.stats(),
      .final_states = {},
      .converged = true,
      .replica_stats = {},
      .duration = scheduler.now(),
  };

  // Quiescent final reads — the ω-tail of the recorded history.
  for (ProcessId p = 0; p < cfg.n_processes; ++p) {
    if (net.crashed(p)) continue;
    auto& obj = *objects[p];
    auto visible = obj.replica().visible_stamps();
    auto [qout, stamp] =
        obj.replica().query_with_stamp(typename A::QueryIn{});
    recorder.record_query(p, stamp, typename A::QueryIn{}, qout,
                          std::move(visible), /*final_read=*/true);
    out.final_states.push_back(obj.replica().current_state());
  }
  for (std::size_t i = 1; i < out.final_states.size(); ++i) {
    if (!(out.final_states[i] == out.final_states[0])) {
      out.converged = false;
    }
  }
  for (auto& obj : objects) {
    out.replica_stats.push_back(obj->replica().stats());
  }

  auto recorded = recorder.build();
  out.history = std::move(recorded.history);
  out.certificate = std::move(recorded.certificate);
  return out;
}

}  // namespace ucw
