// Randomized workload generation.
//
// Each process draws an independent operation stream (update/query mix,
// value distribution) and independent think times from its forked RNG
// stream; everything is reproducible from the top-level seed. The value
// range is kept deliberately small by default so concurrent updates
// actually collide — a wide key space would make every run trivially
// conflict-free and hide the semantic differences E9 measures.
#pragma once

#include <string>

#include "adt/all.hpp"
#include "net/latency.hpp"
#include "util/rng.hpp"

namespace ucw {

struct WorkloadConfig {
  std::size_t ops_per_process = 50;
  double update_ratio = 0.7;        ///< else a query is issued
  double insert_ratio = 0.6;        ///< among set updates: insert vs delete
  int value_range = 8;              ///< values drawn from [0, range)
  LatencyModel think_time = LatencyModel::exponential(500.0);
};

/// Draws a random set update (insert or delete of a random value).
template <typename V = int>
[[nodiscard]] typename SetAdt<V>::Update random_set_update(
    Rng& rng, const WorkloadConfig& cfg) {
  const int v = static_cast<int>(rng.uniform_int(0, cfg.value_range - 1));
  if (rng.chance(cfg.insert_ratio)) {
    return SetAdt<V>::insert(static_cast<V>(v));
  }
  return SetAdt<V>::remove(static_cast<V>(v));
}

/// Draws a random counter delta in [-3, +5] \ {0} (biased to grow).
[[nodiscard]] inline CounterAdt::Update random_counter_update(Rng& rng) {
  std::int64_t d = 0;
  while (d == 0) d = rng.uniform_int(-3, 5);
  return CounterAdt::add(d);
}

/// Draws a random register write.
[[nodiscard]] inline MemoryAdt<std::string, int>::Update random_mem_update(
    Rng& rng, const WorkloadConfig& cfg) {
  const int reg = static_cast<int>(rng.uniform_int(0, cfg.value_range - 1));
  const int val = static_cast<int>(rng.uniform_int(0, 999));
  return MemoryAdt<std::string, int>::write("r" + std::to_string(reg), val);
}

/// Draws a random document edit (insert of a short string or erase).
[[nodiscard]] inline DocumentAdt::Update random_doc_update(
    Rng& rng, std::size_t doc_hint) {
  const std::size_t pos = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(doc_hint)));
  if (rng.chance(0.7)) {
    const char c = static_cast<char>('a' + rng.uniform_int(0, 25));
    return DocumentAdt::insert_at(pos, std::string(1, c));
  }
  return DocumentAdt::erase_at(pos, 1);
}

}  // namespace ucw
