// Recording distributed histories (and their certificates) from runs.
//
// The harness notes every operation each process performs — updates with
// their broadcast stamp, queries with their output, issue stamp and the
// set of update stamps visible in the local log — and turns the whole
// run into (a) a History (Definition 2) whose final quiescent reads are
// flagged ω, and (b) a RunCertificate the polynomial validators check
// against Definitions 9/10. Stamps are globally unique, so they double
// as update identities when the certificate's visible sets are resolved
// to event ids.
#pragma once

#include <map>
#include <vector>

#include "criteria/certificate.hpp"
#include "history/history.hpp"

namespace ucw {

template <UqAdt A>
class HistoryRecorder {
 public:
  HistoryRecorder(A adt, std::size_t n_processes)
      : adt_(std::move(adt)), per_process_(n_processes) {}

  void record_update(ProcessId p, Stamp stamp, typename A::Update u,
                     std::vector<Stamp> visible) {
    UCW_CHECK(p < per_process_.size());
    Pending e;
    e.label = EventLabel<A>(std::in_place_index<0>, std::move(u));
    e.stamp = stamp;
    e.visible = std::move(visible);
    e.omega = false;
    per_process_[p].push_back(std::move(e));
  }

  void record_query(ProcessId p, Stamp stamp, typename A::QueryIn qi,
                    typename A::QueryOut qo, std::vector<Stamp> visible,
                    bool final_read = false) {
    UCW_CHECK(p < per_process_.size());
    Pending e;
    e.label = EventLabel<A>(
        std::in_place_index<1>,
        QueryObservation<A>{std::move(qi), std::move(qo)});
    e.stamp = stamp;
    e.visible = std::move(visible);
    e.omega = final_read;
    per_process_[p].push_back(std::move(e));
  }

  [[nodiscard]] std::size_t event_count() const {
    std::size_t n = 0;
    for (const auto& v : per_process_) n += v.size();
    return n;
  }

  struct Recorded {
    History<A> history;
    RunCertificate certificate;
  };

  /// Assembles the history and certificate. Updates' identities are
  /// their stamps; a query whose visible set references an unrecorded
  /// stamp indicates harness misuse and throws.
  [[nodiscard]] Recorded build() const {
    std::vector<Event<A>> events;
    RunCertificate cert;
    std::map<Stamp, EventId> update_by_stamp;

    for (ProcessId p = 0; p < per_process_.size(); ++p) {
      std::uint32_t seq = 0;
      for (const auto& pending : per_process_[p]) {
        Event<A> e;
        e.id = static_cast<EventId>(events.size());
        e.pid = p;
        e.seq = seq++;
        e.label = pending.label;
        e.omega = pending.omega;
        if (e.is_update()) update_by_stamp[pending.stamp] = e.id;
        events.push_back(std::move(e));
        cert.stamps.push_back(pending.stamp);
      }
    }
    cert.visible.resize(events.size());
    std::size_t idx = 0;
    for (ProcessId p = 0; p < per_process_.size(); ++p) {
      for (const auto& pending : per_process_[p]) {
        auto& vis = cert.visible[idx++];
        vis.reserve(pending.visible.size());
        for (const Stamp& s : pending.visible) {
          auto it = update_by_stamp.find(s);
          UCW_CHECK_MSG(it != update_by_stamp.end(),
                        "visible stamp " << s << " matches no recorded "
                                            "update");
          vis.push_back(it->second);
        }
      }
    }
    return Recorded{History<A>(adt_, std::move(events),
                               per_process_.size()),
                    std::move(cert)};
  }

 private:
  struct Pending {
    EventLabel<A> label{};
    Stamp stamp;
    std::vector<Stamp> visible;
    bool omega = false;
  };

  A adt_;
  std::vector<std::vector<Pending>> per_process_;
};

}  // namespace ucw
