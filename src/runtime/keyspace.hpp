// Multi-key workload generation: zipfian key sampling.
//
// Real keyspaces are skewed — a few hot keys absorb most of the traffic
// while a long tail is touched rarely (the YCSB default is zipfian for
// this reason). The store benchmarks use this sampler to decide *which*
// object each operation hits; what the operation does is still drawn by
// the per-ADT generators in workload.hpp. skew = 0 degenerates to
// uniform; the conventional "zipfian constant" is 0.99.
//
// Sampling inverts the precomputed cumulative weight table with a binary
// search: O(log n_keys) per draw, O(n_keys) memory once. Deterministic
// given the Rng, like every randomized component in libucw.
#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ucw {

class ZipfianKeys {
 public:
  ZipfianKeys(std::size_t n_keys, double skew = 0.99)
      : cumulative_(n_keys) {
    UCW_CHECK(n_keys >= 1);
    UCW_CHECK(skew >= 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < n_keys; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      cumulative_[i] = total;
    }
  }

  [[nodiscard]] std::size_t n_keys() const { return cumulative_.size(); }

  /// Draws a key index in [0, n_keys); rank 0 is the hottest key.
  [[nodiscard]] std::size_t sample_index(Rng& rng) const {
    const double u = rng.uniform_real(0.0, cumulative_.back());
    auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    if (it == cumulative_.end()) --it;
    return static_cast<std::size_t>(it - cumulative_.begin());
  }

  /// Draws a key name ("k0" is the hottest).
  [[nodiscard]] std::string sample(Rng& rng) const {
    return key_name(sample_index(rng));
  }

  [[nodiscard]] static std::string key_name(std::size_t index) {
    return "k" + std::to_string(index);
  }

 private:
  std::vector<double> cumulative_;
};

}  // namespace ucw
