// The paper's example histories (Figures 1 and 2), verbatim.
//
// Figure 1 shows four histories of a shared integer set with different
// consistency strengths; Figure 2 shows the pipelined-consistent but not
// eventually consistent history used by Proposition 1. These are the
// ground-truth inputs of the criteria checkers' acceptance tests and of
// the `fig1_criteria_matrix` / `fig2_pipelined_convergence` benches.
#pragma once

#include <string>
#include <vector>

#include "adt/set.hpp"
#include "history/history.hpp"

namespace ucw {

using FigureHistory = History<SetAdt<int>>;

/// Expected classification of one paper history (from the figure captions
/// plus the PC column we derive in DESIGN.md).
struct FigureExpectation {
  std::string label;       ///< e.g. "fig1a"
  std::string caption;     ///< the paper's caption
  bool ec, sec, uc, suc, pc;
};

/// Fig. 1a — "EC but not SEC nor UC".
[[nodiscard]] FigureHistory figure_1a();
/// Fig. 1b — "SEC but not UC".
[[nodiscard]] FigureHistory figure_1b();
/// Fig. 1c — "SEC and UC but not SUC".
[[nodiscard]] FigureHistory figure_1c();
/// Fig. 1d — "SUC but not PC".
[[nodiscard]] FigureHistory figure_1d();
/// Fig. 2 — "PC but not EC".
[[nodiscard]] FigureHistory figure_2();

/// All five histories with their paper-expected classification.
[[nodiscard]] std::vector<std::pair<FigureHistory, FigureExpectation>>
paper_figures();

}  // namespace ucw
