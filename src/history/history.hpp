// Distributed histories (paper, Definition 2).
//
// A history is a countable set of events labelled by updates or query
// observations, partially ordered by the program order ↦. This
// implementation stores events grouped into per-process chains (the
// common case: communicating sequential processes) plus optional extra
// order edges (thread creation, peer join/leave), so the order is a
// genuine partial order, not necessarily a union of disjoint chains.
//
// The paper's figures use ω-superscripts: an event repeated infinitely
// often at the end of its process. We model that with an `omega` flag,
// restricted to events that are maximal on their chain; the checkers give
// ω-events the "all but finitely many" interpretation the definitions use
// (e.g. an ω-query must hold in the final converged state, an update must
// be visible to every ω-event).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "adt/concepts.hpp"
#include "clock/timestamp.hpp"
#include "util/assert.hpp"

namespace ucw {

using EventId = std::uint32_t;

/// Label of an event: an update or a query observation q_i/q_o.
template <UqAdt A>
using EventLabel = std::variant<typename A::Update, QueryObservation<A>>;

template <UqAdt A>
struct Event {
  EventId id = 0;          ///< dense index into History::events()
  ProcessId pid = 0;       ///< process (maximal chain) that issued it
  std::uint32_t seq = 0;   ///< position on that process's chain
  EventLabel<A> label;
  bool omega = false;      ///< repeated infinitely often (chain-maximal)

  [[nodiscard]] bool is_update() const { return label.index() == 0; }
  [[nodiscard]] bool is_query() const { return label.index() == 1; }

  [[nodiscard]] const typename A::Update& update() const {
    return std::get<typename A::Update>(label);
  }
  [[nodiscard]] const QueryObservation<A>& query() const {
    return std::get<QueryObservation<A>>(label);
  }
};

template <UqAdt A>
class History {
 public:
  History(A adt, std::vector<Event<A>> events, std::size_t n_processes,
          std::vector<std::pair<EventId, EventId>> extra_edges = {})
      : adt_(std::move(adt)),
        events_(std::move(events)),
        n_processes_(n_processes),
        extra_edges_(std::move(extra_edges)) {
    index();
    validate();
  }

  [[nodiscard]] const A& adt() const { return adt_; }
  [[nodiscard]] const std::vector<Event<A>>& events() const { return events_; }
  [[nodiscard]] const Event<A>& event(EventId id) const { return events_[id]; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t process_count() const { return n_processes_; }

  /// Event ids of process p's chain, in program order.
  [[nodiscard]] const std::vector<EventId>& chain(ProcessId p) const {
    UCW_CHECK(p < n_processes_);
    return chains_[p];
  }

  /// U_H — ids of update events, in id order.
  [[nodiscard]] const std::vector<EventId>& update_ids() const {
    return update_ids_;
  }
  /// Q_H — ids of query events, in id order.
  [[nodiscard]] const std::vector<EventId>& query_ids() const {
    return query_ids_;
  }

  /// Dense index of an update event among updates (for bitmask work);
  /// only valid for ids in update_ids().
  [[nodiscard]] std::size_t update_slot(EventId id) const {
    UCW_DCHECK(events_[id].is_update());
    return update_slot_[id];
  }

  [[nodiscard]] bool has_omega() const { return omega_count_ > 0; }
  [[nodiscard]] std::size_t omega_count() const { return omega_count_; }

  /// Program order ↦ (strict): true when a must precede b.
  [[nodiscard]] bool prog_before(EventId a, EventId b) const {
    if (a == b) return false;
    const auto& ea = events_[a];
    const auto& eb = events_[b];
    if (ea.pid == eb.pid) return ea.seq < eb.seq;
    if (extra_edges_.empty()) return false;
    return closure_[a][b];
  }

  /// The extra (cross-chain) edges supplied at construction.
  [[nodiscard]] const std::vector<std::pair<EventId, EventId>>& extra_edges()
      const {
    return extra_edges_;
  }

  /// Projection H_F of Definition 2: keep only the events in `keep`
  /// (a sorted list of ids); events are re-numbered densely and the
  /// program order is restricted.
  [[nodiscard]] History restricted_to(const std::vector<EventId>& keep) const;

  /// Renders one line per process: "p0: I(1) · R/{1} · R/{}^ω".
  [[nodiscard]] std::string to_string() const;

 private:
  void index();
  void validate() const;

  A adt_;
  std::vector<Event<A>> events_;
  std::size_t n_processes_;
  std::vector<std::pair<EventId, EventId>> extra_edges_;

  std::vector<std::vector<EventId>> chains_;
  std::vector<EventId> update_ids_;
  std::vector<EventId> query_ids_;
  std::vector<std::size_t> update_slot_;
  std::size_t omega_count_ = 0;
  // Transitive closure of (chain ∪ extra) edges; only built when extra
  // edges exist — pure chain order is answered arithmetically.
  std::vector<std::vector<bool>> closure_;
};

template <UqAdt A>
void History<A>::index() {
  chains_.assign(n_processes_, {});
  update_slot_.assign(events_.size(), 0);
  for (const auto& e : events_) {
    UCW_CHECK_MSG(e.pid < n_processes_,
                  "event pid out of range: " << e.pid);
    chains_[e.pid].push_back(e.id);
    if (e.is_update()) {
      update_slot_[e.id] = update_ids_.size();
      update_ids_.push_back(e.id);
    } else {
      query_ids_.push_back(e.id);
    }
    if (e.omega) ++omega_count_;
  }
  for (auto& chain : chains_) {
    std::sort(chain.begin(), chain.end(), [this](EventId a, EventId b) {
      return events_[a].seq < events_[b].seq;
    });
  }
  if (!extra_edges_.empty()) {
    // Floyd–Warshall-style closure; histories with extra edges are the
    // small hand-built ones, so O(n^3) is irrelevant.
    const std::size_t n = events_.size();
    closure_.assign(n, std::vector<bool>(n, false));
    for (const auto& chain : chains_) {
      for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        closure_[chain[i]][chain[i + 1]] = true;
      }
    }
    for (const auto& [a, b] : extra_edges_) {
      UCW_CHECK(a < n && b < n);
      closure_[a][b] = true;
    }
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!closure_[i][k]) continue;
        for (std::size_t j = 0; j < n; ++j) {
          if (closure_[k][j]) closure_[i][j] = true;
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      UCW_CHECK_MSG(!closure_[i][i], "program order must be acyclic");
    }
  }
}

template <UqAdt A>
void History<A>::validate() const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    UCW_CHECK_MSG(events_[i].id == i, "event ids must be dense and ordered");
  }
  for (const auto& chain : chains_) {
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      UCW_CHECK_MSG(events_[chain[i]].seq < events_[chain[i + 1]].seq,
                    "duplicate seq on a chain");
      UCW_CHECK_MSG(!events_[chain[i]].omega,
                    "an omega event must be maximal on its chain");
    }
  }
  for (const auto& e : events_) {
    if (e.omega) {
      UCW_CHECK_MSG(e.is_query(),
                    "only queries may be repeated infinitely (an omega "
                    "update would make U_H infinite, trivializing every "
                    "criterion; see Definition 5)");
    }
  }
}

template <UqAdt A>
History<A> History<A>::restricted_to(const std::vector<EventId>& keep) const {
  std::vector<EventId> remap(events_.size(), static_cast<EventId>(-1));
  std::vector<Event<A>> kept;
  kept.reserve(keep.size());
  for (EventId id : keep) {
    UCW_CHECK(id < events_.size());
    remap[id] = static_cast<EventId>(kept.size());
    Event<A> e = events_[id];
    e.id = remap[id];
    kept.push_back(std::move(e));
  }
  std::vector<std::pair<EventId, EventId>> edges;
  for (const auto& [a, b] : extra_edges_) {
    if (remap[a] != static_cast<EventId>(-1) &&
        remap[b] != static_cast<EventId>(-1)) {
      edges.emplace_back(remap[a], remap[b]);
    }
  }
  return History(adt_, std::move(kept), n_processes_, std::move(edges));
}

template <UqAdt A>
std::string History<A>::to_string() const {
  std::string out;
  for (ProcessId p = 0; p < n_processes_; ++p) {
    out += "p" + std::to_string(p) + ": ";
    const auto& chain = chains_[p];
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (i != 0) out += " · ";
      const auto& e = events_[chain[i]];
      if (e.is_update()) {
        out += adt_.format_update(e.update());
      } else {
        out += adt_.format_query(e.query().first, e.query().second);
      }
      if (e.omega) out += "^ω";
    }
    out += '\n';
  }
  return out;
}

}  // namespace ucw
