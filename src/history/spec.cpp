#include "history/spec.hpp"

#include <sstream>

#include "history/builder.hpp"
#include "util/assert.hpp"

namespace ucw {

namespace {

using S = SetAdt<int>;

std::set<int> parse_values(const std::string& text,
                           const std::string& token) {
  std::set<int> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    try {
      out.insert(std::stoi(item));
    } catch (const std::exception&) {
      UCW_CHECK_MSG(false, "bad value list in token '" << token << "'");
    }
  }
  return out;
}

int parse_int(const std::string& text, const std::string& token) {
  try {
    return std::stoi(text);
  } catch (const std::exception&) {
    UCW_CHECK_MSG(false, "bad integer in token '" << token << "'");
  }
  return 0;
}

}  // namespace

History<SetAdt<int>> parse_set_history_spec(const std::string& spec) {
  std::vector<std::vector<std::string>> processes(1);
  std::stringstream ss(spec);
  std::string token;
  while (ss >> token) {
    if (token == "|") {
      processes.emplace_back();
    } else {
      processes.back().push_back(token);
    }
  }
  HistoryBuilder<S> b{S{}, processes.size()};
  for (ProcessId p = 0; p < processes.size(); ++p) {
    for (const std::string& op : processes[p]) {
      UCW_CHECK_MSG(!op.empty(), "empty token");
      if (op[0] == 'I' && op.size() > 1) {
        b.update(p, S::insert(parse_int(op.substr(1), op)));
      } else if (op[0] == 'D' && op.size() > 1) {
        b.update(p, S::remove(parse_int(op.substr(1), op)));
      } else if (op.rfind("R:", 0) == 0) {
        b.query(p, S::read(), parse_values(op.substr(2), op));
      } else if (op.rfind("W:", 0) == 0) {
        b.query_omega(p, S::read(), parse_values(op.substr(2), op));
      } else {
        UCW_CHECK_MSG(false, "cannot parse op '" << op << "'");
      }
    }
  }
  return b.build();
}

std::string to_spec(const History<SetAdt<int>>& h) {
  std::ostringstream os;
  for (ProcessId p = 0; p < h.process_count(); ++p) {
    if (p != 0) os << " | ";
    bool first = true;
    for (EventId id : h.chain(p)) {
      if (!first) os << ' ';
      first = false;
      const auto& e = h.event(id);
      if (e.is_update()) {
        if (const auto* ins = std::get_if<SetInsert<int>>(&e.update())) {
          os << 'I' << ins->value;
        } else {
          os << 'D' << std::get<SetDelete<int>>(e.update()).value;
        }
      } else {
        os << (e.omega ? "W:" : "R:");
        bool first_v = true;
        for (int v : e.query().second) {
          if (!first_v) os << ',';
          first_v = false;
          os << v;
        }
      }
    }
  }
  return os.str();
}

}  // namespace ucw
