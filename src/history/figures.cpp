#include "history/figures.hpp"

#include "history/builder.hpp"

namespace ucw {

namespace {
using S = SetAdt<int>;
using Set = std::set<int>;
}  // namespace

FigureHistory figure_1a() {
  // p0: I(1) · R/{2} · R/{1} · R/∅^ω
  // p1: I(2) · R/{1} · R/{2} · R/∅^ω
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1))
      .query(0, S::read(), Set{2})
      .query(0, S::read(), Set{1})
      .query_omega(0, S::read(), Set{});
  b.update(1, S::insert(2))
      .query(1, S::read(), Set{1})
      .query(1, S::read(), Set{2})
      .query_omega(1, S::read(), Set{});
  return b.build();
}

FigureHistory figure_1b() {
  // p0: I(1) · D(2) · R/{1,2}^ω
  // p1: I(2) · D(1) · R/{1,2}^ω
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1))
      .update(0, S::remove(2))
      .query_omega(0, S::read(), Set{1, 2});
  b.update(1, S::insert(2))
      .update(1, S::remove(1))
      .query_omega(1, S::read(), Set{1, 2});
  return b.build();
}

FigureHistory figure_1c() {
  // p0: I(1) · R/∅ · R/{1,2}^ω
  // p1: I(2) · R/{1,2}^ω
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1))
      .query(0, S::read(), Set{})
      .query_omega(0, S::read(), Set{1, 2});
  b.update(1, S::insert(2)).query_omega(1, S::read(), Set{1, 2});
  return b.build();
}

FigureHistory figure_1d() {
  // p0: I(1) · R/{1} · I(2) · R/{1,2}^ω
  // p1: R/{2} · R/{1,2}^ω
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1))
      .query(0, S::read(), Set{1})
      .update(0, S::insert(2))
      .query_omega(0, S::read(), Set{1, 2});
  b.query(1, S::read(), Set{2}).query_omega(1, S::read(), Set{1, 2});
  return b.build();
}

FigureHistory figure_2() {
  // p0: I(1) · I(3) · R/{1,3} · R/{1,2,3} · R/{1,2}^ω
  // p1: I(2) · D(3) · R/{2} · R/{1,2} · R/{1,2,3}^ω
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1))
      .update(0, S::insert(3))
      .query(0, S::read(), Set{1, 3})
      .query(0, S::read(), Set{1, 2, 3})
      .query_omega(0, S::read(), Set{1, 2});
  b.update(1, S::insert(2))
      .update(1, S::remove(3))
      .query(1, S::read(), Set{2})
      .query(1, S::read(), Set{1, 2})
      .query_omega(1, S::read(), Set{1, 2, 3});
  return b.build();
}

std::vector<std::pair<FigureHistory, FigureExpectation>> paper_figures() {
  std::vector<std::pair<FigureHistory, FigureExpectation>> out;
  // PC expectations are derived, not stated in the captions: 1a/1c read
  // values that contradict their own process's updates, 1b's ω-read
  // {1,2} is unreachable after all four updates, and 1d's p1 starts with
  // R/{2} which no linearization containing I(1) before it explains --
  // actually for 1d, p1 has no updates, and R/{2} requires I(2) before
  // I(1)'s effect is visible; the caption itself says "SUC but not PC".
  out.emplace_back(figure_1a(),
                   FigureExpectation{"fig1a", "EC but not SEC nor UC",
                                     true, false, false, false, false});
  out.emplace_back(figure_1b(),
                   FigureExpectation{"fig1b", "SEC but not UC", true, true,
                                     false, false, false});
  out.emplace_back(figure_1c(),
                   FigureExpectation{"fig1c", "SEC and UC but not SUC", true,
                                     true, true, false, false});
  out.emplace_back(figure_1d(),
                   FigureExpectation{"fig1d", "SUC but not PC", true, true,
                                     true, true, false});
  out.emplace_back(figure_2(), FigureExpectation{"fig2", "PC but not EC",
                                                 false, false, false, false,
                                                 true});
  return out;
}

}  // namespace ucw
