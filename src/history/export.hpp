// History export: Graphviz DOT rendering of distributed histories.
//
// Produces a figure in the style of the paper's diagrams: one horizontal
// rank per process, events labelled with their operations, solid edges
// for program order, and (optionally) dashed edges for a visibility
// assignment produced by the SEC/SUC solvers — handy for inspecting why
// a checker accepted or refuted a history.
#pragma once

#include <sstream>
#include <string>

#include "history/history.hpp"
#include "util/bitset64.hpp"

namespace ucw {

struct DotOptions {
  bool show_event_ids = false;
  /// Per-event visible update masks (e.g. VisibilityAssignment::visible);
  /// empty = no visibility edges drawn.
  std::vector<Bitset64> visibility{};
};

template <UqAdt A>
[[nodiscard]] std::string to_dot(const History<A>& h,
                                 const DotOptions& opt = {}) {
  std::ostringstream os;
  os << "digraph history {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, fontname=\"monospace\"];\n";
  for (ProcessId p = 0; p < h.process_count(); ++p) {
    os << "  subgraph cluster_p" << p << " {\n"
       << "    label=\"p" << p << "\";\n"
       << "    style=dotted;\n";
    for (EventId id : h.chain(p)) {
      const auto& e = h.event(id);
      std::string label =
          e.is_update()
              ? h.adt().format_update(e.update())
              : h.adt().format_query(e.query().first, e.query().second);
      if (e.omega) label += "^ω";
      if (opt.show_event_ids) {
        label = "#" + std::to_string(id) + " " + label;
      }
      os << "    e" << id << " [label=\"" << label << "\""
         << (e.is_update() ? ", style=filled, fillcolor=lightgrey" : "")
         << "];\n";
    }
    os << "  }\n";
  }
  // Program order: chain edges plus explicit extra edges.
  for (ProcessId p = 0; p < h.process_count(); ++p) {
    const auto& chain = h.chain(p);
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      os << "  e" << chain[i] << " -> e" << chain[i + 1] << ";\n";
    }
  }
  for (const auto& [a, b] : h.extra_edges()) {
    os << "  e" << a << " -> e" << b << " [constraint=false];\n";
  }
  // Visibility edges (update -> seeing event), beyond program order.
  if (!opt.visibility.empty()) {
    UCW_CHECK(opt.visibility.size() == h.size());
    for (EventId e = 0; e < h.size(); ++e) {
      opt.visibility[e].for_each([&](unsigned slot) {
        const EventId u = h.update_ids()[slot];
        if (u != e && !h.prog_before(u, e)) {
          os << "  e" << u << " -> e" << e
             << " [style=dashed, color=blue, constraint=false];\n";
        }
      });
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace ucw
