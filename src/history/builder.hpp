// Fluent construction of distributed histories.
//
// Mirrors how the paper draws its figures: one line of operations per
// process, optional ω-suffix, optional cross-process order edges.
//
//   HistoryBuilder<SetAdt<int>> b{SetAdt<int>{}, 2};
//   b.update(0, S::insert(1)).query(0, S::read(), {2});
//   b.update(1, S::insert(2)).query_omega(1, S::read(), {});
//   auto h = b.build();
#pragma once

#include <utility>
#include <vector>

#include "history/history.hpp"

namespace ucw {

template <UqAdt A>
class HistoryBuilder {
 public:
  explicit HistoryBuilder(A adt, std::size_t n_processes)
      : adt_(std::move(adt)), next_seq_(n_processes, 0) {}

  HistoryBuilder& update(ProcessId p, typename A::Update u) {
    push(p, EventLabel<A>(std::in_place_index<0>, std::move(u)), false);
    return *this;
  }

  HistoryBuilder& query(ProcessId p, typename A::QueryIn qi,
                        typename A::QueryOut qo) {
    push(p,
         EventLabel<A>(std::in_place_index<1>,
                       QueryObservation<A>{std::move(qi), std::move(qo)}),
         false);
    return *this;
  }

  /// Query repeated infinitely often; must be the last event of p.
  HistoryBuilder& query_omega(ProcessId p, typename A::QueryIn qi,
                              typename A::QueryOut qo) {
    push(p,
         EventLabel<A>(std::in_place_index<1>,
                       QueryObservation<A>{std::move(qi), std::move(qo)}),
         true);
    return *this;
  }

  /// Id of the most recently added event (to wire extra order edges).
  [[nodiscard]] EventId last_id() const {
    UCW_CHECK(!events_.empty());
    return events_.back().id;
  }

  /// Adds a cross-process program-order edge a ↦ b (e.g. fork/join).
  HistoryBuilder& order_edge(EventId a, EventId b) {
    extra_edges_.emplace_back(a, b);
    return *this;
  }

  [[nodiscard]] History<A> build() const {
    return History<A>(adt_, events_, next_seq_.size(), extra_edges_);
  }

 private:
  void push(ProcessId p, EventLabel<A> label, bool omega) {
    UCW_CHECK_MSG(p < next_seq_.size(), "process id out of range");
    Event<A> e;
    e.id = static_cast<EventId>(events_.size());
    e.pid = p;
    e.seq = next_seq_[p]++;
    e.label = std::move(label);
    e.omega = omega;
    events_.push_back(std::move(e));
  }

  A adt_;
  std::vector<Event<A>> events_;
  std::vector<std::uint32_t> next_seq_;
  std::vector<std::pair<EventId, EventId>> extra_edges_;
};

}  // namespace ucw
