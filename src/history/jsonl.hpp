// JSONL import/export for recorded op histories.
//
// The audit pipeline's interchange format, living next to the DOT
// exporter: one meta line followed by one line per recorded operation,
// so histories stream, diff, and grep like the trace/metrics artifacts
// they sit alongside.
//
//   {"meta":{"format":"ucw-history-v1","adt":"register-i64",
//            "processes":3,"captured":1200,"dropped":0,"final_reads":96,
//            "seed":7,"fault":"none"}}
//   {"p":0,"t":1,"op":"u","key":"k3","clock":42,"val":7,"ts":12.5}
//   {"p":2,"t":0,"op":"q","key":"k3","clock":57,"val":7,"ts":19.0}
//   {"p":2,"t":0,"op":"f","key":"k3","val":9,"ts":310.0}
//
// `op` is u(pdate) / q(uery) / f(inal read); updates carry their
// arbitration stamp as (clock, p), program order per (p, t) chain is
// the line order. Values are pinned to int64 registers — the store is
// ADT-generic, but an interchange format needs one concrete value
// encoding, and the LWW register is the paper's Algorithm 2 object.
// The writer is generic over register-like ADTs via a small concept;
// the reader produces the concrete rows the auditor consumes.
//
// Reading a million-line history with the generic JSON parser would
// dominate audit time, so data lines go through a hand-rolled flat
// scanner (~10× faster); only the meta line pays for the real parser.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "audit/recorder.hpp"
#include "clock/timestamp.hpp"
#include "util/json.hpp"

namespace ucw {

/// One parsed history line (concrete int64-register row).
struct HistoryLine {
  ProcessId pid = 0;
  std::uint32_t thread = 0;
  char op = 'u';  ///< 'u' update, 'q' query, 'f' final read
  std::string key;
  LogicalTime clock = 0;  ///< update stamp clock / query-local clock
  std::int64_t value = 0;
  double ts = 0.0;
};

struct HistoryMeta {
  std::size_t n_processes = 0;
  std::uint64_t captured = 0;
  std::uint64_t dropped = 0;
  std::uint64_t final_reads = 0;
  std::string adt = "register-i64";
  /// Scenario provenance: the generator seed and the injected corpus
  /// mutant ("none" = clean store). Makes a failing artifact
  /// reproducible standalone — the header alone names the run.
  std::uint64_t seed = 0;
  std::string fault = "none";
};

struct HistoryFile {
  HistoryMeta meta;
  std::vector<HistoryLine> lines;
};

/// Register-like ADTs whose histories can take this wire form: update
/// payload and query output both project to int64.
template <typename A>
concept Int64RegisterLike =
    UqAdt<A> && requires(const typename A::Update& u,
                         const typename A::QueryOut& o) {
      { u.value } -> std::convertible_to<std::int64_t>;
      { o } -> std::convertible_to<std::int64_t>;
    };

template <Int64RegisterLike A, typename Key>
inline void append_history_lines(const audit::OpRecorder<A, Key>& rec,
                                 std::vector<HistoryLine>* out) {
  for (const auto& r : rec.drain()) {
    HistoryLine line;
    line.pid = r.pid;
    line.thread = r.thread;
    line.key = std::string(r.key);
    line.ts = r.ts;
    switch (r.kind) {
      case audit::OpKind::kUpdate:
        line.op = 'u';
        line.clock = r.stamp.clock;
        line.value = static_cast<std::int64_t>(r.update.value);
        break;
      case audit::OpKind::kQuery:
        line.op = 'q';
        line.clock = r.stamp.clock;
        line.value = static_cast<std::int64_t>(r.out);
        break;
      case audit::OpKind::kFinalRead:
        line.op = 'f';
        line.value = static_cast<std::int64_t>(r.out);
        break;
    }
    out->push_back(std::move(line));
  }
}

inline void write_history_jsonl(std::ostream& os, const HistoryMeta& meta,
                                const std::vector<HistoryLine>& lines) {
  os << "{\"meta\":{\"format\":\"ucw-history-v1\",\"adt\":\"" << meta.adt
     << "\",\"processes\":" << meta.n_processes
     << ",\"captured\":" << meta.captured << ",\"dropped\":" << meta.dropped
     << ",\"final_reads\":" << meta.final_reads << ",\"seed\":" << meta.seed
     << ",\"fault\":";
  JsonValue::write_escaped(os, meta.fault);
  os << "}}\n";
  for (const auto& l : lines) {
    os << "{\"p\":" << l.pid << ",\"t\":" << l.thread << ",\"op\":\"" << l.op
       << "\",\"key\":";
    JsonValue::write_escaped(os, l.key);
    if (l.op != 'f') os << ",\"clock\":" << l.clock;
    os << ",\"val\":" << l.value << ",\"ts\":" << l.ts << "}\n";
  }
}

namespace detail {

/// Flat scanner for one data line: a single-level object of string /
/// number members, no nested values, simple escapes in strings only.
/// Returns false (with *err set) on shape violations; unknown members
/// are skipped so the format can grow fields without breaking old
/// readers.
inline bool parse_history_line(const std::string& s, HistoryLine* out,
                               std::string* err) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  };
  const auto fail = [&](const char* what) {
    if (err) *err = what;
    return false;
  };
  const auto parse_string = [&](std::string* v) {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    v->clear();
    while (i < s.size()) {
      const char c = s[i++];
      if (c == '"') return true;
      if (c == '\\' && i < s.size()) {
        const char e = s[i++];
        v->push_back(e == 'n' ? '\n' : e == 't' ? '\t' : e);
      } else {
        v->push_back(c);
      }
    }
    return false;
  };
  skip_ws();
  if (i >= s.size() || s[i] != '{') return fail("expected '{'");
  ++i;
  std::string name;
  std::string sval;
  while (true) {
    skip_ws();
    if (i < s.size() && s[i] == '}') break;
    if (!parse_string(&name)) return fail("expected member name");
    skip_ws();
    if (i >= s.size() || s[i] != ':') return fail("expected ':'");
    ++i;
    skip_ws();
    if (i < s.size() && s[i] == '"') {
      if (!parse_string(&sval)) return fail("unterminated string");
      if (name == "op") {
        if (sval.size() != 1) return fail("op must be one character");
        out->op = sval[0];
      } else if (name == "key") {
        out->key = sval;
      }
    } else {
      const std::size_t start = i;
      while (i < s.size() && s[i] != ',' && s[i] != '}') ++i;
      if (i == start) return fail("expected value");
      const std::string num = s.substr(start, i - start);
      try {
        if (name == "p") {
          out->pid = static_cast<ProcessId>(std::stoul(num));
        } else if (name == "t") {
          out->thread = static_cast<std::uint32_t>(std::stoul(num));
        } else if (name == "clock") {
          out->clock = std::stoull(num);
        } else if (name == "val") {
          out->value = std::stoll(num);
        } else if (name == "ts") {
          out->ts = std::stod(num);
        }
      } catch (...) {
        return fail("bad number");
      }
    }
    skip_ws();
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == '}') break;
    return fail("expected ',' or '}'");
  }
  if (out->op != 'u' && out->op != 'q' && out->op != 'f') {
    return fail("op must be 'u', 'q' or 'f'");
  }
  return true;
}

}  // namespace detail

/// Loads a JSONL history; blank lines are skipped, a malformed line is
/// a hard error (a checker must not quietly reason over a mangled
/// history). The meta line is optional for hand-written fixtures —
/// without it, processes is inferred from the max pid seen.
inline bool read_history_jsonl(std::istream& is, HistoryFile* out,
                               std::string* err = nullptr) {
  out->lines.clear();
  out->meta = HistoryMeta{};
  bool have_meta = false;
  std::string line;
  std::size_t lineno = 0;
  ProcessId max_pid = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (!have_meta && out->lines.empty() &&
        line.find("\"meta\"") != std::string::npos) {
      JsonValue v;
      std::string perr;
      if (!JsonParser::parse(line, &v, &perr)) {
        if (err) *err = "line " + std::to_string(lineno) + ": " + perr;
        return false;
      }
      const JsonValue& m = v["meta"];
      out->meta.n_processes = static_cast<std::size_t>(
          m["processes"].as_int(0));
      out->meta.captured = static_cast<std::uint64_t>(m["captured"].as_int(0));
      out->meta.dropped = static_cast<std::uint64_t>(m["dropped"].as_int(0));
      out->meta.final_reads =
          static_cast<std::uint64_t>(m["final_reads"].as_int(0));
      if (m.has("adt")) out->meta.adt = m["adt"].as_string();
      out->meta.seed = static_cast<std::uint64_t>(m["seed"].as_int(0));
      if (m.has("fault")) out->meta.fault = m["fault"].as_string();
      have_meta = true;
      continue;
    }
    HistoryLine l;
    std::string perr;
    if (!detail::parse_history_line(line, &l, &perr)) {
      if (err) *err = "line " + std::to_string(lineno) + ": " + perr;
      return false;
    }
    if (l.pid > max_pid) max_pid = l.pid;
    out->lines.push_back(std::move(l));
  }
  if (!have_meta && !out->lines.empty()) {
    out->meta.n_processes = static_cast<std::size_t>(max_pid) + 1;
  }
  return true;
}

}  // namespace ucw
