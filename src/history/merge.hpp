// Merging per-process op histories into one auditable file.
//
// A multi-process cluster records one history per OS process (each
// node's OpRecorder only sees its own pids), but the offline auditor
// certifies a *global* history. The merge is sound because the format's
// ordering unit is the per-(process, thread) chain: each part carries
// complete chains for its own pids and nothing for anyone else's, so
// concatenation preserves every chain's program order and invents no
// cross-chain order that was not recorded. The only real work is
// validating that the parts actually fit together — overlapping pids
// or mismatched ADTs would make the concatenation a lie, and a merged
// meta header must keep the counters and provenance honest.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "history/jsonl.hpp"

namespace ucw {

/// Merges per-process histories into one. Requirements checked:
/// parts non-empty, one shared ADT name, pids disjoint across parts,
/// and one shared (seed, fault) provenance — each node of a cluster
/// run is launched with the same seed, so a mismatch means the parts
/// are from different runs. Counters are summed; process count is the
/// max (pids are global ids, not per-part). Returns false with *err
/// set on any violation.
inline bool merge_histories(const std::vector<HistoryFile>& parts,
                            HistoryFile* out, std::string* err = nullptr) {
  const auto fail = [&](const std::string& what) {
    if (err) *err = what;
    return false;
  };
  if (parts.empty()) return fail("no histories to merge");
  out->lines.clear();
  out->meta = HistoryMeta{};
  out->meta.adt = parts.front().meta.adt;
  out->meta.seed = parts.front().meta.seed;
  out->meta.fault = parts.front().meta.fault;
  std::set<ProcessId> seen_pids;
  std::size_t total_lines = 0;
  for (const HistoryFile& p : parts) total_lines += p.lines.size();
  out->lines.reserve(total_lines);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const HistoryFile& p = parts[i];
    const std::string part = "part " + std::to_string(i);
    if (p.meta.adt != out->meta.adt) {
      return fail(part + ": adt '" + p.meta.adt + "' != '" + out->meta.adt +
                  "'");
    }
    if (p.meta.seed != out->meta.seed) {
      return fail(part + ": seed " + std::to_string(p.meta.seed) +
                  " != " + std::to_string(out->meta.seed) +
                  " — parts are from different runs");
    }
    if (p.meta.fault != out->meta.fault) {
      return fail(part + ": fault '" + p.meta.fault + "' != '" +
                  out->meta.fault + "'");
    }
    std::set<ProcessId> part_pids;
    for (const HistoryLine& l : p.lines) part_pids.insert(l.pid);
    for (const ProcessId pid : part_pids) {
      if (!seen_pids.insert(pid).second) {
        return fail(part + ": pid " + std::to_string(pid) +
                    " already contributed by an earlier part — chains "
                    "would interleave unrecorded");
      }
    }
    if (p.meta.n_processes > out->meta.n_processes) {
      out->meta.n_processes = p.meta.n_processes;
    }
    out->meta.captured += p.meta.captured;
    out->meta.dropped += p.meta.dropped;
    out->meta.final_reads += p.meta.final_reads;
    out->lines.insert(out->lines.end(), p.lines.begin(), p.lines.end());
  }
  for (const ProcessId pid : seen_pids) {
    if (pid >= out->meta.n_processes) {
      out->meta.n_processes = static_cast<std::size_t>(pid) + 1;
    }
  }
  return true;
}

}  // namespace ucw
