// A tiny textual language for set histories.
//
// One '|'-separated segment per process; tokens:
//   I<v>    insert v                 D<v>    delete v
//   R:<vs>  read returning {vs}      W:<vs>  read returning {vs} forever (ω)
// where <vs> is a comma-separated list of ints, possibly empty:
//   "I1 R:1 | I2 W:1,2"  ≡  p0: I(1)·R/{1}   p1: I(2)·R/{1,2}^ω
//
// Used by the consistency_explorer example and anywhere a test wants a
// history literal that reads like the paper's figures.
#pragma once

#include <string>

#include "adt/set.hpp"
#include "history/history.hpp"

namespace ucw {

/// Parses the spec; throws contract_error with a pointer to the
/// offending token on malformed input.
[[nodiscard]] History<SetAdt<int>> parse_set_history_spec(
    const std::string& spec);

/// Renders a history back into the spec language (round-trips with
/// parse_set_history_spec up to whitespace).
[[nodiscard]] std::string to_spec(const History<SetAdt<int>>& h);

}  // namespace ucw
