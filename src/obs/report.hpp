// The one-stop observability report: everything a run can tell you,
// gathered into one value and rendered through one entry point.
//
// Benches and examples used to hand-pick which stats tables to print
// (`print_store_table` here, `print_recovery_table` there); a Report
// carries every process's StoreStats + ShardStats, the network totals,
// and the obs layer's derived convergence metrics, and
// `print_observability` decides which tables are worth showing (a table
// whose counters are all zero is noise). `export_metrics_json` folds
// the same Report into a MetricsRegistry per process and writes the
// JSON snapshot — the machine-readable twin of the tables, where every
// kind of silent loss (crash drops, partition drops, trace-ring
// overwrites) surfaces as an explicit `dropped_*` counter.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/store_obs.hpp"
#include "store/store_stats.hpp"

namespace ucw::obs {

struct ProcessReport {
  StoreStats store;
  std::vector<ShardStats> shards;

  // Derived convergence metrics; zeros when the store ran without obs.
  LogHistogramSnapshot replication_lag;  ///< origin stamp → local apply
  std::uint64_t floor_lag = 0;           ///< clock − stability floor
  std::uint64_t view_staleness = 0;      ///< clock − stalest engine apply
  std::uint64_t trace_events_recorded = 0;
  std::uint64_t trace_events_dropped = 0;  ///< ring overwrites

  // Audit recorder accounting; zeros when the run records no history.
  std::uint64_t history_records_captured = 0;
  /// Op records lost to a full recorder ring — every one voids UC
  /// certification of the exported history, so like every other silent
  /// loss it rides the metrics snapshot as a dropped_* counter.
  std::uint64_t history_records_dropped = 0;
};

struct Report {
  std::vector<ProcessReport> processes;
  NetworkStats net;
  /// Per-shard tables are verbose; opt in for single-process deep dives.
  bool show_shards = false;
};

/// Build one process's slice from any store exposing stats(),
/// shard_stats(), and obs_state() (StoreCore and everything derived).
template <typename StoreT>
[[nodiscard]] ProcessReport make_process_report(const StoreT& s) {
  ProcessReport r;
  r.store = s.stats();
  r.shards = s.shard_stats();
  if (const StoreObs* o = s.obs_state(); o != nullptr) {
    r.replication_lag = o->replication_lag.snapshot();
    r.floor_lag = o->floor_lag.load(std::memory_order_relaxed);
    r.view_staleness = o->view_staleness.load(std::memory_order_relaxed);
    if (o->tracer != nullptr) {
      for (std::size_t t = 0; t < o->tracer->tracks(); ++t)
        r.trace_events_recorded += o->tracer->ring(t).recorded();
      r.trace_events_dropped = o->tracer->dropped_total();
    }
  }
  return r;
}

/// Render every table the run's counters justify: the store table
/// always; recovery, anti-entropy, convergence, and loss summaries only
/// when something happened on them; shard tables when show_shards.
void print_observability(std::ostream& os, const Report& report);

/// Fold one process slice into a registry: every StoreStats counter,
/// the derived gauges, the replication-lag histogram, and the
/// canonical `dropped_*` loss counters.
void fill_registry(MetricsRegistry& reg, const ProcessReport& proc);

/// {"processes":[{pid, counters, gauges, histograms}…], "net":{…}} —
/// the snapshot tools/check_trace.py validates in CI.
void export_metrics_json(std::ostream& os, const Report& report);

}  // namespace ucw::obs
