// Chrome trace_event JSON export for Tracer rings.
//
// Writes the {"traceEvents":[…]} array format that chrome://tracing
// and Perfetto load directly. Each process's tracer becomes one pid;
// each track becomes one tid with a thread_name metadata record
// ("router/clients" for track 0, "worker N" above). Span events map to
// "B"/"E" phase pairs, instants to "i" (thread scope), gauges to "C"
// counters.
//
// Because rings overwrite their oldest slots, a snapshot can contain an
// "E" whose "B" was overwritten (or, mid-run, a "B" with no "E"). The
// exporter repairs this per (pid, tid, kind): orphaned ends are
// dropped, unclosed begins are dropped, so the emitted JSON always has
// exactly matched span pairs — the invariant tools/check_trace.py and
// the golden test assert.
#pragma once

#include <ostream>
#include <vector>

#include "obs/trace.hpp"

namespace ucw::obs {

/// Export every track of every tracer into one Chrome trace. Call
/// after the traced run has quiesced (no concurrent writers).
void write_chrome_trace(std::ostream& os,
                        const std::vector<const Tracer*>& tracers);

}  // namespace ucw::obs
