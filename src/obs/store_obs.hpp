// Per-store observability state, allocated iff StoreConfig::tracing.
//
// StoreCore keeps a unique_ptr to one of these; every instrumentation
// hook is `if (obs_) …`, so tracing-off costs one branch on a pointer
// that is null for the store's whole lifetime. The tracer is optional
// even when tracing is on (derived metrics without spans); it is owned
// by the caller, never by the store — see trace.hpp.
//
// Derived convergence metrics live here rather than in StoreStats
// because they are not plain counters: the replication-lag histogram is
// recorded concurrently (router + workers) and the gauges are sampled,
// not accumulated.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace ucw::obs {

struct StoreObs {
  /// Span sink; null = metrics only.
  Tracer* tracer = nullptr;

  /// Per-op span events (update stamp, local/remote apply) are kept
  /// for stamps with `clock & sample_mask == 0`; batch, recovery,
  /// anti-entropy, and gauge events are never sampled out. Power of
  /// two minus one (rounded up from StoreConfig::trace_sample_every).
  std::uint64_t sample_mask = 0;

  [[nodiscard]] bool sampled(std::uint64_t clock) const {
    return (clock & sample_mask) == 0;
  }

  /// local clock − stability floor, sampled on the flush tick.
  std::atomic<std::uint64_t> floor_lag{0};

  /// local clock − min over engines of the last applied stamp: how
  /// stale the most-behind published view is, sampled on the flush
  /// tick.
  std::atomic<std::uint64_t> view_staleness{0};

  /// Origin Lamport stamp → local apply clock delta, recorded at
  /// delivery/routing time for sampled stamps (same 1-in-N stamp key
  /// as the per-op span events, so the histogram stays representative
  /// while the per-entry cost stays off the hot path). Cache-aligned so
  /// the router's bucket increments never invalidate the line every
  /// hook reads (`tracer` + `sample_mask` above).
  alignas(64) LogHistogram replication_lag;
};

}  // namespace ucw::obs
