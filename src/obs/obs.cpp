#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace ucw::obs {

// ---------------------------------------------------------------------------
// Percentiles / LatencySummary

double exact_percentile(const std::vector<double>& sorted, double q) {
  UCW_CHECK(!sorted.empty());
  UCW_CHECK(q >= 0.0 && q <= 100.0);
  if (sorted.size() == 1) return sorted.front();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void LatencySummary::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sum_sq_ += sample * sample;
  sorted_valid_ = false;
}

void LatencySummary::merge(const LatencySummary& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  sorted_valid_ = false;
}

double LatencySummary::mean() const {
  UCW_CHECK(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double LatencySummary::stddev() const {
  UCW_CHECK(!samples_.empty());
  const double n = static_cast<double>(samples_.size());
  const double m = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - m * m);
  return std::sqrt(var);
}

void LatencySummary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double LatencySummary::min() const {
  UCW_CHECK(!samples_.empty());
  ensure_sorted();
  return sorted_.front();
}

double LatencySummary::max() const {
  UCW_CHECK(!samples_.empty());
  ensure_sorted();
  return sorted_.back();
}

double LatencySummary::percentile(double q) const {
  ensure_sorted();
  return exact_percentile(sorted_, q);
}

std::string LatencySummary::summary() const {
  std::ostringstream os;
  if (samples_.empty()) {
    os << "n=0";
    return os.str();
  }
  os << "n=" << count() << " mean=" << mean() << " p50=" << percentile(50)
     << " p99=" << percentile(99) << " max=" << max();
  return os.str();
}

// ---------------------------------------------------------------------------
// LogHistogram

namespace {

// v == 0 → bucket 0; otherwise the bit width, so bucket b covers
// [2^(b-1), 2^b).
std::size_t bucket_of(std::uint64_t v) {
  std::size_t b = 0;
  while (v != 0) {
    ++b;
    v >>= 1;
  }
  return b;
}

double bucket_lo(std::size_t b) {
  return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
}

double bucket_hi(std::size_t b) {
  return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
}

}  // namespace

void LogHistogram::record(std::uint64_t value) {
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void LogHistogram::merge(const LogHistogramSnapshot& other) {
  for (std::size_t b = 0; b < kLogBuckets; ++b)
    if (other.buckets[b] != 0)
      buckets_[b].fetch_add(other.buckets[b], std::memory_order_relaxed);
  count_.fetch_add(other.count, std::memory_order_relaxed);
  sum_.fetch_add(other.sum, std::memory_order_relaxed);
}

LogHistogramSnapshot LogHistogram::snapshot() const {
  LogHistogramSnapshot s;
  for (std::size_t b = 0; b < kLogBuckets; ++b)
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

double LogHistogramSnapshot::mean() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

std::uint64_t LogHistogramSnapshot::max_bound() const {
  for (std::size_t b = kLogBuckets; b-- > 0;)
    if (buckets[b] != 0)
      return b == 0 ? 0
                    : (b >= 64 ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << b) - 1);
  return 0;
}

double LogHistogramSnapshot::percentile(double q) const {
  UCW_CHECK(q >= 0.0 && q <= 100.0);
  if (count == 0) return 0.0;
  // Find the bucket the rank falls into, then interpolate linearly
  // inside its [lo, hi) range by the rank's offset into the bucket.
  const double rank = q / 100.0 * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kLogBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets[b];
    if (static_cast<double>(seen) >= rank) {
      if (b == 0) return 0.0;
      const double frac =
          std::clamp((rank - before) / static_cast<double>(buckets[b]), 0.0,
                     1.0);
      return bucket_lo(b) + frac * (bucket_hi(b) - bucket_lo(b));
    }
  }
  return static_cast<double>(max_bound());
}

std::string LogHistogramSnapshot::summary() const {
  std::ostringstream os;
  if (count == 0) {
    os << "n=0";
    return os.str();
  }
  os << "n=" << count << " mean=" << mean() << " p50=" << percentile(50)
     << " p99=" << percentile(99) << " max<=" << max_bound();
  return os.str();
}

// ---------------------------------------------------------------------------
// Tracing

const char* trace_event_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kUpdateStamp: return "update_stamp";
    case TraceEventKind::kApplyLocal: return "apply_local";
    case TraceEventKind::kBatchFlush: return "batch_flush";
    case TraceEventKind::kDeliver: return "deliver";
    case TraceEventKind::kApplyRemote: return "apply_remote";
    case TraceEventKind::kAckHeartbeat: return "ack_heartbeat";
    case TraceEventKind::kGcFold: return "gc_fold";
    case TraceEventKind::kSyncRequest: return "sync_request";
    case TraceEventKind::kSyncServe: return "sync_serve";
    case TraceEventKind::kSnapshotInstall: return "snapshot_install";
    case TraceEventKind::kAeRequest: return "ae_request";
    case TraceEventKind::kAeServe: return "ae_serve";
    case TraceEventKind::kAeInstall: return "ae_install";
    case TraceEventKind::kAeAdopt: return "ae_adopt";
    case TraceEventKind::kPartitionCut: return "partition_cut";
    case TraceEventKind::kPartitionDrop: return "partition_drop";
    case TraceEventKind::kPartitionHeal: return "partition_heal";
    case TraceEventKind::kFloorLag: return "floor_lag";
    case TraceEventKind::kReplicationLag: return "replication_lag";
    case TraceEventKind::kViewStaleness: return "view_staleness";
  }
  return "unknown";
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  const std::uint64_t head = recorded();
  const std::uint64_t n =
      std::min<std::uint64_t>(head, static_cast<std::uint64_t>(buf_.size()));
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = head - n; i < head; ++i)
    out.push_back(buf_[i & mask_]);
  return out;
}

Tracer::Tracer(std::uint32_t pid, std::size_t tracks,
               std::size_t ring_capacity_pow2, TraceNowFn now, void* now_ctx)
    : pid_(pid), now_(now), now_ctx_(now_ctx) {
  UCW_CHECK(tracks >= 1);
  rings_.reserve(tracks);
  for (std::size_t t = 0; t < tracks; ++t)
    rings_.push_back(std::make_unique<TraceRing>(ring_capacity_pow2));
  // Pin the wall-clock epoch now so tracers created at different times
  // share one timeline.
  (void)default_now_us();
}

std::uint64_t Tracer::dropped_total() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r->dropped();
  return n;
}

double Tracer::default_now_us() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// Chrome trace export

namespace {

void write_json_event(std::ostream& os, bool& first, const char* name,
                      const char* ph, std::uint32_t pid, std::uint16_t tid,
                      double ts, const TraceEvent* args, const char* scope) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"" << name << "\",\"ph\":\"" << ph << "\",\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"ts\":" << std::fixed << std::setprecision(3)
     << ts;
  if (scope != nullptr) os << ",\"s\":\"" << scope << "\"";
  if (args != nullptr) {
    if (args->phase == TracePhase::kCounter)
      os << ",\"args\":{\"value\":" << args->a << "}";
    else
      os << ",\"args\":{\"a\":" << args->a << ",\"b\":" << args->b << "}";
  }
  os << "}";
}

void write_metadata(std::ostream& os, bool& first, const char* kind,
                    std::uint32_t pid, std::uint16_t tid,
                    const std::string& value) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"" << kind << "\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << value << "\"}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<const Tracer*>& tracers) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const Tracer* tr : tracers) {
    if (tr == nullptr) continue;
    write_metadata(os, first, "process_name", tr->pid(), 0,
                   "proc " + std::to_string(tr->pid()));
    for (std::size_t t = 0; t < tr->tracks(); ++t) {
      write_metadata(os, first, "thread_name", tr->pid(),
                     static_cast<std::uint16_t>(t),
                     t == 0 ? std::string("router/clients")
                            : "worker " + std::to_string(t - 1));
      const std::vector<TraceEvent> events = tr->ring(t).snapshot();
      // Span repair: ring overwrites can leave an "E" whose "B" was
      // lost, or (mid-run snapshots) a "B" with no "E". Walk in ring
      // order with a per-kind stack and keep only matched pairs.
      std::vector<char> keep(events.size(), 1);
      std::vector<std::size_t> open;  // indices of pending kBegin
      for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent& e = events[i];
        if (e.phase == TracePhase::kBegin) {
          open.push_back(i);
        } else if (e.phase == TracePhase::kEnd) {
          if (!open.empty() && events[open.back()].kind == e.kind) {
            open.pop_back();
          } else {
            keep[i] = 0;  // orphaned end
          }
        }
      }
      for (std::size_t i : open) keep[i] = 0;  // unclosed begins
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (!keep[i]) continue;
        const TraceEvent& e = events[i];
        const char* name = trace_event_name(e.kind);
        const auto tid = static_cast<std::uint16_t>(t);
        switch (e.phase) {
          case TracePhase::kBegin:
            write_json_event(os, first, name, "B", tr->pid(), tid, e.ts_us,
                             &e, nullptr);
            break;
          case TracePhase::kEnd:
            write_json_event(os, first, name, "E", tr->pid(), tid, e.ts_us,
                             nullptr, nullptr);
            break;
          case TracePhase::kInstant:
            write_json_event(os, first, name, "i", tr->pid(), tid, e.ts_us,
                             &e, "t");
            break;
          case TracePhase::kCounter:
            write_json_event(os, first, name, "C", tr->pid(), tid, e.ts_us,
                             &e, nullptr);
            break;
        }
      }
    }
  }
  os << "\n]}\n";
}

// ---------------------------------------------------------------------------
// MetricsRegistry

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

LogHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LogHistogram>();
  return *slot;
}

void MetricsRegistry::write_json(std::ostream& os, int indent) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2 = pad + "  ";
  os << "{\n";
  os << pad2 << "\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ", ") << "\"" << name << "\": " << c->value();
    first = false;
  }
  os << "},\n" << pad2 << "\"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ", ") << "\"" << name << "\": " << g->value();
    first = false;
  }
  os << "},\n" << pad2 << "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const LogHistogramSnapshot s = h->snapshot();
    os << (first ? "" : ", ") << "\"" << name << "\": {\"count\": " << s.count
       << ", \"sum\": " << s.sum << ", \"mean\": " << s.mean()
       << ", \"p50\": " << s.percentile(50) << ", \"p99\": " << s.percentile(99)
       << ", \"max_bound\": " << s.max_bound() << ", \"buckets\": {";
    bool bfirst = true;
    for (std::size_t b = 0; b < kLogBuckets; ++b) {
      if (s.buckets[b] == 0) continue;
      os << (bfirst ? "" : ", ") << "\"" << b << "\": " << s.buckets[b];
      bfirst = false;
    }
    os << "}}";
    first = false;
  }
  os << "}\n" << pad << "}";
}

// ---------------------------------------------------------------------------
// Report

namespace {

bool any_recovery(const std::vector<StoreStats>& per) {
  for (const StoreStats& s : per)
    if (s.gc_folded != 0 || s.gc_runs != 0 || s.acks_sent != 0 ||
        s.sync_requests_sent != 0 || s.sync_requests_served != 0 ||
        s.snapshots_installed != 0 || s.snapshots_served != 0 ||
        s.entries_dropped_crash != 0 || s.acks_dropped_crash != 0)
      return true;
  return false;
}

bool any_anti_entropy(const std::vector<StoreStats>& per) {
  for (const StoreStats& s : per)
    if (s.stream_gaps_detected != 0 || s.ae_rounds_started != 0 ||
        s.ae_rounds_served != 0 || s.ae_rounds_completed != 0)
      return true;
  return false;
}

}  // namespace

void print_observability(std::ostream& os, const Report& report) {
  std::vector<StoreStats> per;
  per.reserve(report.processes.size());
  for (const ProcessReport& p : report.processes) per.push_back(p.store);

  print_store_table(os, per, report.net);
  print_saturation_line(os, per);
  if (any_recovery(per)) print_recovery_table(os, per);
  if (any_anti_entropy(per)) print_anti_entropy_table(os, per);

  if (report.show_shards) {
    for (std::size_t p = 0; p < report.processes.size(); ++p) {
      os << "shards, process " << p << ":\n";
      print_shard_table(os, report.processes[p].shards);
    }
  }

  bool any_lag = false;
  for (const ProcessReport& p : report.processes)
    any_lag = any_lag || !p.replication_lag.empty() || p.view_staleness != 0;
  if (any_lag) {
    TextTable t({"process", "repl lag n", "lag mean", "lag p50", "lag p99",
                 "lag max<=", "floor lag", "view staleness"});
    for (std::size_t p = 0; p < report.processes.size(); ++p) {
      const ProcessReport& pr = report.processes[p];
      const LogHistogramSnapshot& lag = pr.replication_lag;
      t.add(p, lag.count, lag.mean(), lag.percentile(50), lag.percentile(99),
            lag.max_bound(), pr.floor_lag, pr.view_staleness);
    }
    t.print(os);
  }

  // Every kind of silent loss, in one place. "none" is worth a line:
  // it says the run really was lossless, not that nobody checked.
  std::uint64_t env_crash = 0, ent_crash = 0, ack_crash = 0, trace_drop = 0;
  std::uint64_t history_drop = 0;
  for (const ProcessReport& p : report.processes) {
    env_crash += p.store.envelopes_dropped_crash;
    ent_crash += p.store.entries_dropped_crash;
    ack_crash += p.store.acks_dropped_crash;
    trace_drop += p.trace_events_dropped;
    history_drop += p.history_records_dropped;
  }
  const std::uint64_t total = env_crash + ent_crash + ack_crash + trace_drop +
                              history_drop +
                              report.net.messages_dropped_crash +
                              report.net.messages_dropped_partition;
  if (total == 0) {
    os << "losses: none\n";
  } else {
    os << "losses: " << ent_crash << " entries + " << env_crash
       << " envelopes + " << ack_crash << " acks dropped at crash, "
       << report.net.messages_dropped_crash << " messages dropped at crash, "
       << report.net.messages_dropped_partition
       << " messages dropped at partitions, " << trace_drop
       << " trace events overwritten, " << history_drop
       << " history records dropped\n";
  }
}

void fill_registry(MetricsRegistry& reg, const ProcessReport& proc) {
  const StoreStats& s = proc.store;
  const auto c = [&reg](const char* name, std::uint64_t v) {
    reg.counter(name).add(v);
  };
  c("local_updates", s.local_updates);
  c("remote_entries", s.remote_entries);
  c("duplicate_entries", s.duplicate_entries);
  c("queries", s.queries);
  c("published_reads", s.published_reads);
  c("ring_reads", s.ring_reads);
  c("inbox_deliveries", s.inbox_deliveries);
  c("router_deliveries", s.router_deliveries);
  c("ring_batch_claims", s.ring_batch_claims);
  c("ring_batch_ops", s.ring_batch_ops);
  c("zero_copy_reads", s.zero_copy_reads);
  c("ryw_ring_fallbacks", s.ryw_ring_fallbacks);
  c("envelopes_sent", s.envelopes_sent);
  c("entries_sent", s.entries_sent);
  c("flushes_full", s.flushes_full);
  c("flushes_manual", s.flushes_manual);
  c("bytes_batched", s.bytes_batched);
  c("bytes_unbatched", s.bytes_unbatched);
  c("gc_runs", s.gc_runs);
  c("gc_folded", s.gc_folded);
  c("acks_sent", s.acks_sent);
  c("sync_requests_sent", s.sync_requests_sent);
  c("sync_requests_served", s.sync_requests_served);
  c("sync_retries", s.sync_retries);
  c("syncs_completed", s.syncs_completed);
  c("snapshots_served", s.snapshots_served);
  c("snapshots_installed", s.snapshots_installed);
  c("snapshot_entries_served", s.snapshot_entries_served);
  c("snapshot_bytes_served", s.snapshot_bytes_served);
  c("catchup_keys", s.catchup_keys);
  c("catchup_entries", s.catchup_entries);
  c("snapshot_keys_served", s.snapshot_keys_served);
  c("snapshot_keys_skipped_delta", s.snapshot_keys_skipped_delta);
  c("stream_gaps_detected", s.stream_gaps_detected);
  c("ae_rounds_started", s.ae_rounds_started);
  c("ae_rounds_served", s.ae_rounds_served);
  c("ae_rounds_completed", s.ae_rounds_completed);
  c("ae_snapshots_installed", s.ae_snapshots_installed);
  c("ae_entries_installed", s.ae_entries_installed);
  c("ae_entries_served", s.ae_entries_served);
  c("ae_entries_skipped_covered", s.ae_entries_skipped_covered);
  c("ae_bytes_served", s.ae_bytes_served);
  c("trace_events_recorded", proc.trace_events_recorded);
  c("history_records_captured", proc.history_records_captured);
  // Canonical loss counters: every way this process can silently shed
  // data, under one `dropped_` prefix.
  c("dropped_envelopes_crash", s.envelopes_dropped_crash);
  c("dropped_entries_crash", s.entries_dropped_crash);
  c("dropped_acks_crash", s.acks_dropped_crash);
  c("dropped_trace_events", proc.trace_events_dropped);
  c("dropped_history_records", proc.history_records_dropped);

  reg.gauge("stability_floor").set(static_cast<std::int64_t>(s.stability_floor));
  reg.gauge("stability_floor_lag")
      .set(static_cast<std::int64_t>(s.stability_floor_lag));
  reg.gauge("published_view_staleness")
      .set(static_cast<std::int64_t>(proc.view_staleness));
  // Mean ops amortized per multi-slot ring CAS (rounded down; 0 when
  // nothing batched) — the saturation bench's CAS-per-op input.
  if (s.ring_batch_claims > 0) {
    reg.gauge("ring_ops_per_claim")
        .set(static_cast<std::int64_t>(s.ring_batch_ops /
                                       s.ring_batch_claims));
  }

  reg.histogram("replication_lag").merge(proc.replication_lag);
}

void export_metrics_json(std::ostream& os, const Report& report) {
  os << "{\n  \"processes\": [\n";
  for (std::size_t p = 0; p < report.processes.size(); ++p) {
    MetricsRegistry reg;
    fill_registry(reg, report.processes[p]);
    os << "    {\"pid\": " << p << ", \"metrics\": ";
    reg.write_json(os, 4);
    os << "}" << (p + 1 < report.processes.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"net\": ";
  MetricsRegistry net;
  net.counter("messages_sent").add(report.net.messages_sent);
  net.counter("broadcasts").add(report.net.broadcasts);
  net.counter("messages_delivered").add(report.net.messages_delivered);
  net.counter("messages_held_partition").add(report.net.messages_held_partition);
  net.counter("messages_duplicated").add(report.net.messages_duplicated);
  net.counter("restarts").add(report.net.restarts);
  net.counter("dropped_messages_crash").add(report.net.messages_dropped_crash);
  net.counter("dropped_messages_partition")
      .add(report.net.messages_dropped_partition);
  net.counter("dropped_messages_escalation")
      .add(report.net.messages_dropped_escalation);
  net.write_json(os, 2);
  os << "\n}\n";
}

}  // namespace ucw::obs
