// Unified metrics registry: named counters, gauges, and log-bucketed
// histograms with a JSON snapshot export.
//
// Registration (`counter("name")` etc.) is mutex-guarded and idempotent
// — the first call creates the instrument, later calls return the same
// reference, and references stay valid for the registry's lifetime
// (instruments are heap-allocated behind the name map). *Recording* on
// an instrument is lock-free relaxed atomics, so many threads can share
// one counter. The store's own hot path still writes its plain
// `StoreStats` slices; the registry is the unified export surface the
// snapshot code folds those into (see report.hpp), plus the home of
// anything recorded directly (histograms, derived gauges).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "obs/histogram.hpp"

namespace ucw::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; the returned reference is stable and safe to
  /// record on from any thread.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] LogHistogram& histogram(const std::string& name);

  /// One JSON object: {"counters":{…},"gauges":{…},"histograms":{…}}.
  /// Histograms export count/sum/mean/p50/p99/max plus the non-empty
  /// buckets. Keys are sorted (std::map) so output is diffable.
  void write_json(std::ostream& os, int indent = 0) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

}  // namespace ucw::obs
