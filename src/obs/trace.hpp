// Low-overhead event tracing: bounded lock-free rings of typed events.
//
// A Tracer owns one ring per *track* — track 0 is the router/client
// track of a process, tracks 1..W its worker threads — and every hook
// in the store is a single `record()` call: read the clock, bump the
// ring head, write one POD slot. The ring is the overwriting cousin of
// `util/spsc_ring.hpp`: same power-of-two indexing and cache-aligned
// head counter, but instead of back-pressure a full ring silently
// overwrites its oldest slot and counts the loss. Tracing must never
// block a worker; dropping the oldest history is the correct failure
// mode for a flight recorder.
//
// Multi-writer safety: `head_.fetch_add` gives each writer a private
// slot, so concurrent writers (client threads stamping on track 0)
// never contend beyond the fetch_add. Two writers hit the *same* slot
// only when one laps the other by a full ring — a torn event is
// possible then; the exporter's span-pairing pass drops any fallout.
//
// Tracers are owned by the caller (harness / example / bench), not the
// store: a restarted store incarnation keeps appending to the same
// per-process tracks, so a crash–recover timeline stays in one trace.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace ucw::obs {

/// Everything the store layer can put on a timeline. Names (see
/// `trace_event_name`) are the strings that appear in chrome://tracing
/// and that `tools/check_trace.py --require` matches on.
enum class TraceEventKind : std::uint8_t {
  // Life of an update.
  kUpdateStamp,    // client draws a Lamport stamp (+ MPSC enqueue, pooled)
  kApplyLocal,     // a shard engine applies a local update
  kBatchFlush,     // span: assemble + broadcast one batch envelope
  kDeliver,        // a batch envelope arrives from a peer
  kApplyRemote,    // a shard engine applies a remote entry
  kAckHeartbeat,   // stability ack broadcast
  kGcFold,         // span: stability fold / log GC sweep
  // Recovery.
  kSyncRequest,    // restarted process asks a peer for state
  kSyncServe,      // donor serves a sync request
  kSnapshotInstall,  // recovering process installs one shard snapshot
  // Anti-entropy.
  kAeRequest,      // pull request sent to a peer
  kAeServe,        // peer serves a delta
  kAeInstall,      // one anti-entropy shard delta installed
  kAeAdopt,        // a full anti-entropy round completed
  // Partitions (recorded by SimNetwork).
  kPartitionCut,   // drop-mode partition imposed
  kPartitionDrop,  // a message was dropped at a partition boundary
  kPartitionHeal,  // partition healed
  // Derived gauges, sampled on the flush tick (counter-phase events).
  kFloorLag,         // local clock − stability floor
  kReplicationLag,   // p99 of origin-stamp→local-apply lag so far
  kViewStaleness,    // local clock − oldest engine's last applied stamp
};

[[nodiscard]] const char* trace_event_name(TraceEventKind kind);

/// Chrome trace_event phases we emit: B/E span pairs, thread-scoped
/// instants, and counters.
enum class TracePhase : std::uint8_t { kBegin, kEnd, kInstant, kCounter };

/// One POD slot. `a`/`b` are event-specific payloads (documented per
/// hook; typically a Lamport clock, peer pid, or entry count) exported
/// as JSON args.
struct TraceEvent {
  double ts_us = 0.0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  TraceEventKind kind{};
  TracePhase phase{};
  std::uint16_t track = 0;
};

/// Overwriting multi-writer ring. Push never blocks and never fails;
/// once `recorded() > capacity()` the oldest events have been lost and
/// `dropped()` says how many. Snapshot is meant for quiesced reads
/// (export after a run); during concurrent writes it may observe torn
/// slots, which the exporter tolerates.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity_pow2 = 1 << 14)
      : buf_(capacity_pow2), mask_(capacity_pow2 - 1) {
    UCW_CHECK_MSG(capacity_pow2 >= 2 && (capacity_pow2 & mask_) == 0,
                  "TraceRing capacity must be a power of two >= 2");
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void push(const TraceEvent& e) {
    const std::uint64_t i = head_.fetch_add(1, std::memory_order_relaxed);
    buf_[i & mask_] = e;
  }

  /// Total events ever pushed.
  [[nodiscard]] std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Events lost to overwriting (oldest-first).
  [[nodiscard]] std::uint64_t dropped() const {
    const std::uint64_t n = recorded();
    return n > buf_.size() ? n - buf_.size() : 0;
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  /// The surviving events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

 private:
  std::vector<TraceEvent> buf_;
  std::size_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
};

/// Time source for a tracer: returns "now" in microseconds. A plain
/// function pointer + context so a hook costs one indirect call, and so
/// the sim harness can point it at the scheduler's virtual clock.
using TraceNowFn = double (*)(void* ctx);

/// Per-process trace sink: pid + one ring per track + a clock.
class Tracer {
 public:
  /// `tracks` = 1 (router only) + worker count for pooled stores.
  /// Default clock is wall time (steady, µs since first tracer).
  explicit Tracer(std::uint32_t pid, std::size_t tracks = 1,
                  std::size_t ring_capacity_pow2 = 1 << 14,
                  TraceNowFn now = nullptr, void* now_ctx = nullptr);

  [[nodiscard]] double now_us() const {
    if (now_ != nullptr) return now_(now_ctx_);
    return default_now_us();
  }

  void record(std::uint16_t track, TraceEventKind kind, TracePhase phase,
              std::uint64_t a = 0, std::uint64_t b = 0) {
    TraceEvent e;
    e.ts_us = now_us();
    e.a = a;
    e.b = b;
    e.kind = kind;
    e.phase = phase;
    e.track = track < rings_.size() ? track : std::uint16_t{0};
    rings_[e.track]->push(e);
  }

  void begin(std::uint16_t track, TraceEventKind kind, std::uint64_t a = 0,
             std::uint64_t b = 0) {
    record(track, kind, TracePhase::kBegin, a, b);
  }
  void end(std::uint16_t track, TraceEventKind kind, std::uint64_t a = 0,
           std::uint64_t b = 0) {
    record(track, kind, TracePhase::kEnd, a, b);
  }
  void instant(std::uint16_t track, TraceEventKind kind, std::uint64_t a = 0,
               std::uint64_t b = 0) {
    record(track, kind, TracePhase::kInstant, a, b);
  }
  void counter(std::uint16_t track, TraceEventKind kind, std::uint64_t value) {
    record(track, kind, TracePhase::kCounter, value, 0);
  }

  [[nodiscard]] std::uint32_t pid() const { return pid_; }
  [[nodiscard]] std::size_t tracks() const { return rings_.size(); }
  [[nodiscard]] const TraceRing& ring(std::size_t track) const {
    return *rings_[track];
  }

  /// Total events lost to ring overwrites, across all tracks.
  [[nodiscard]] std::uint64_t dropped_total() const;

 private:
  static double default_now_us();

  std::uint32_t pid_;
  TraceNowFn now_;
  void* now_ctx_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

}  // namespace ucw::obs
