// Latency/lag distribution types shared by the whole repo.
//
// Two shapes, one percentile implementation:
//
//  * LatencySummary — exact. Keeps every sample, sorts lazily, reports
//    nearest-rank percentiles with linear interpolation. This is the
//    type behind `StatsAccumulator` and the bench latency tables; fine
//    at harness sample counts (≤ a few million).
//  * LogHistogram — fixed footprint, wait-free. 65 power-of-two
//    buckets of relaxed atomics, so any thread (workers, the router,
//    clients) can record into one histogram without coordination.
//    Percentiles are bucket-interpolated, i.e. exact to within a
//    factor-of-two bucket. This is what the store's hot hooks record
//    into (replication lag at apply time).
//
// Both live in the obs layer so nothing above util/ reinvents
// percentile math again.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ucw::obs {

/// Exact percentile by nearest-rank with linear interpolation over an
/// already-sorted sample vector; q in [0, 100]. The single percentile
/// implementation everything else delegates to.
[[nodiscard]] double exact_percentile(const std::vector<double>& sorted,
                                      double q);

/// Exact sample accumulator: mean/stddev/min/max/percentile over all
/// recorded samples. Single-threaded; use LogHistogram when multiple
/// threads record concurrently.
class LatencySummary {
 public:
  void add(double sample);
  void merge(const LatencySummary& other);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Exact percentile by nearest-rank; q in [0, 100].
  [[nodiscard]] double percentile(double q) const;

  /// "n=… mean=… p50=… p99=… max=…" one-liner for logs and tables.
  [[nodiscard]] std::string summary() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// One bucket per bit width of a uint64 value, plus one for zero.
inline constexpr std::size_t kLogBuckets = 65;

/// Plain-value copy of a LogHistogram: the copyable, report-friendly
/// form (the live histogram is atomics and can't be copied). All the
/// derived statistics live here; the live histogram delegates.
struct LogHistogramSnapshot {
  std::array<std::uint64_t, kLogBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  [[nodiscard]] bool empty() const { return count == 0; }
  [[nodiscard]] double mean() const;
  /// Upper bound of the highest non-empty bucket (0 when empty).
  [[nodiscard]] std::uint64_t max_bound() const;
  /// Bucket-interpolated percentile; q in [0, 100]. Exact to within
  /// the power-of-two bucket the rank falls into.
  [[nodiscard]] double percentile(double q) const;
  /// "n=… mean=… p50=… p99=… max≤…" one-liner.
  [[nodiscard]] std::string summary() const;
};

/// Wait-free log-bucketed histogram of non-negative integer values.
/// Bucket b (b ≥ 1) counts values in [2^(b-1), 2^b); bucket 0 counts
/// zeros. All mutation is relaxed atomic increments — safe from any
/// thread, never blocks, and a read during concurrent writes yields a
/// slightly stale but internally plausible snapshot.
class LogHistogram {
 public:
  LogHistogram() = default;
  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  void record(std::uint64_t value);
  void merge(const LogHistogramSnapshot& other);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool empty() const { return count() == 0; }

  /// Non-atomic copy; all statistics (mean/percentile/max_bound) are
  /// computed on the snapshot.
  [[nodiscard]] LogHistogramSnapshot snapshot() const;

  [[nodiscard]] double percentile(double q) const {
    return snapshot().percentile(q);
  }
  [[nodiscard]] std::string summary() const { return snapshot().summary(); }

 private:
  std::array<std::atomic<std::uint64_t>, kLogBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace ucw::obs
