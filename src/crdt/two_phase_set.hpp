// 2P-Set / U-Set (paper Section VI, reference [18]): two G-Sets, a white
// list of insertions and a black list of deletions.
//
// An element is present when inserted and never deleted; once deleted it
// can never be re-inserted (the black list is permanent). Deletion
// messages are broadcast even for locally-absent elements — the paper's
// model has no causal delivery, so the deletion may reach a replica
// before the insertion it cancels.
#pragma once

#include <set>

#include "clock/timestamp.hpp"

namespace ucw {

template <typename V>
class TwoPhaseSetReplica {
 public:
  struct Message {
    bool is_remove = false;
    V value;
  };

  explicit TwoPhaseSetReplica(ProcessId pid) : pid_(pid) {}

  [[nodiscard]] ProcessId pid() const { return pid_; }

  [[nodiscard]] Message local_insert(V v) {
    return Message{false, std::move(v)};
  }
  [[nodiscard]] Message local_remove(V v) {
    return Message{true, std::move(v)};
  }

  void apply(ProcessId /*from*/, const Message& m) {
    if (m.is_remove) {
      removed_.insert(m.value);
    } else {
      added_.insert(m.value);
    }
  }

  [[nodiscard]] std::set<V> read() const {
    std::set<V> out;
    for (const V& v : added_) {
      if (removed_.count(v) == 0) out.insert(v);
    }
    return out;
  }

  [[nodiscard]] std::size_t approx_bytes() const {
    return (added_.size() + removed_.size()) * sizeof(V);
  }

 private:
  ProcessId pid_;
  std::set<V> added_;
  std::set<V> removed_;
};

}  // namespace ucw
