// G-Set: the grow-only set (paper Section VI, reference [9]).
//
// Insert-only, so all updates commute and apply-on-delivery is already
// update consistent (Section VII-C's remark on commuting updates) — the
// simplest possible CRDT and the baseline the other sets are built from.
#pragma once

#include <set>

#include "clock/timestamp.hpp"

namespace ucw {

template <typename V>
class GSetReplica {
 public:
  struct Message {
    V value;
  };

  explicit GSetReplica(ProcessId pid) : pid_(pid) {}

  [[nodiscard]] ProcessId pid() const { return pid_; }

  [[nodiscard]] Message local_insert(V v) { return Message{std::move(v)}; }

  void apply(ProcessId /*from*/, const Message& m) {
    elements_.insert(m.value);
  }

  [[nodiscard]] const std::set<V>& read() const { return elements_; }
  [[nodiscard]] std::size_t approx_bytes() const {
    return elements_.size() * sizeof(V);
  }

 private:
  ProcessId pid_;
  std::set<V> elements_;
};

}  // namespace ucw
