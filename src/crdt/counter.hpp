// Op-based replicated counter: deltas commute, apply-on-delivery
// converges (the "pure CRDT" example of Section VII-C). The ablation
// bench contrasts it with running the same counter through Algorithm 1's
// full log machinery to quantify what the log costs when it isn't needed.
#pragma once

#include <cstdint>

#include "clock/timestamp.hpp"

namespace ucw {

class CounterCrdtReplica {
 public:
  struct Message {
    std::int64_t delta = 0;
  };

  explicit CounterCrdtReplica(ProcessId pid) : pid_(pid) {}

  [[nodiscard]] ProcessId pid() const { return pid_; }

  [[nodiscard]] Message local_add(std::int64_t delta) {
    return Message{delta};
  }

  void apply(ProcessId /*from*/, const Message& m) { value_ += m.delta; }

  [[nodiscard]] std::int64_t read() const { return value_; }

 private:
  ProcessId pid_;
  std::int64_t value_ = 0;
};

}  // namespace ucw
