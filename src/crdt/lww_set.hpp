// LWW-element-Set (paper Section VI, reference [9]): per-element
// last-writer-wins arbitration.
//
// Each element carries the Lamport stamp of its latest insert/remove;
// the later stamp decides membership. Unlike the OR-Set there is no
// insert bias — a remove stamped later than a concurrent insert wins.
// Per-element LWW converges, but (like the PN-Set) the combination
// across elements need not match any single update linearization, which
// is what the set-semantics bench (E9) measures.
#pragma once

#include <map>
#include <set>

#include "clock/timestamp.hpp"

namespace ucw {

template <typename V>
class LwwSetReplica {
 public:
  struct Message {
    Stamp stamp;
    bool present = false;  ///< true: insert; false: remove
    V value;
  };

  explicit LwwSetReplica(ProcessId pid) : pid_(pid), clock_(pid) {}

  [[nodiscard]] ProcessId pid() const { return pid_; }

  [[nodiscard]] Message local_insert(V v) {
    return Message{clock_.tick(), true, std::move(v)};
  }
  [[nodiscard]] Message local_remove(V v) {
    return Message{clock_.tick(), false, std::move(v)};
  }

  void apply(ProcessId /*from*/, const Message& m) {
    clock_.observe(m.stamp);
    auto it = cells_.find(m.value);
    if (it == cells_.end()) {
      cells_.emplace(m.value, Cell{m.stamp, m.present});
    } else if (it->second.stamp < m.stamp) {
      it->second = Cell{m.stamp, m.present};
    }
  }

  [[nodiscard]] std::set<V> read() const {
    std::set<V> out;
    for (const auto& [v, cell] : cells_) {
      if (cell.present) out.insert(v);
    }
    return out;
  }

  [[nodiscard]] std::size_t approx_bytes() const {
    return cells_.size() * (sizeof(V) + sizeof(Cell));
  }

 private:
  struct Cell {
    Stamp stamp;
    bool present;
  };

  ProcessId pid_;
  LamportClock clock_;
  std::map<V, Cell> cells_;
};

}  // namespace ucw
