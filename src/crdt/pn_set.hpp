// PN-Set / C-Set (paper Section VI, reference [19]): a counter per
// element decides membership.
//
// Insert broadcasts +1, delete broadcasts −1; an element is present when
// its counter is positive. Counters commute, so replicas converge — but
// the converged state can defy any sequential explanation (two concurrent
// inserts need two deletes to remove: not a set any linearization of
// I/I/D can produce), which is exactly the Section VI critique.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "clock/timestamp.hpp"

namespace ucw {

template <typename V>
class PnSetReplica {
 public:
  struct Message {
    V value;
    std::int32_t delta = 0;
  };

  explicit PnSetReplica(ProcessId pid) : pid_(pid) {}

  [[nodiscard]] ProcessId pid() const { return pid_; }

  [[nodiscard]] Message local_insert(V v) { return Message{std::move(v), 1}; }
  [[nodiscard]] Message local_remove(V v) {
    return Message{std::move(v), -1};
  }

  void apply(ProcessId /*from*/, const Message& m) {
    counts_[m.value] += m.delta;
  }

  [[nodiscard]] std::set<V> read() const {
    std::set<V> out;
    for (const auto& [v, c] : counts_) {
      if (c > 0) out.insert(v);
    }
    return out;
  }

  [[nodiscard]] std::size_t approx_bytes() const {
    return counts_.size() * (sizeof(V) + sizeof(std::int64_t));
  }

 private:
  ProcessId pid_;
  std::map<V, std::int64_t> counts_;
};

}  // namespace ucw
