// Generic facade wiring an op-based CRDT replica to the simulated
// network.
//
// Convention shared by every replica in this library (including the
// Algorithm-1 replica): a local operation `local_*` *prepares* a message
// (ticking clocks, generating tags, observing current state) without
// mutating the replica; the mutation happens in `apply`, invoked by the
// network's self-delivery and by every remote delivery. This keeps apply
// the single mutation path, so exactly-once local application falls out
// of the broadcast semantics instead of being each call-site's burden.
//
//   SimCrdtObject<OrSetReplica<int>> a(net, 0), b(net, 1);
//   a.emit(a->local_insert(7));
//   scheduler.run();
//   assert(a->read() == b->read());
#pragma once

#include <utility>

#include "net/sim_network.hpp"

namespace ucw {

template <typename R>
class SimCrdtObject {
 public:
  using Message = typename R::Message;

  template <typename... Args>
  explicit SimCrdtObject(SimNetwork<Message>& net, Args&&... args)
      : replica_(std::forward<Args>(args)...), net_(&net) {
    net_->set_handler(replica_.pid(),
                      [this](ProcessId from, const Message& m) {
                        replica_.apply(from, m);
                      });
  }

  SimCrdtObject(const SimCrdtObject&) = delete;
  SimCrdtObject& operator=(const SimCrdtObject&) = delete;

  /// Reliably broadcasts a prepared message (self-delivery applies it).
  void emit(const Message& m) { net_->broadcast(replica_.pid(), m); }

  [[nodiscard]] R* operator->() { return &replica_; }
  [[nodiscard]] const R* operator->() const { return &replica_; }
  [[nodiscard]] R& replica() { return replica_; }
  [[nodiscard]] const R& replica() const { return replica_; }

 private:
  R replica_;
  SimNetwork<Message>* net_;
};

}  // namespace ucw
