// Explicit instantiations of the common configurations.
#include "crdt/all.hpp"

namespace ucw {

template class GSetReplica<int>;
template class TwoPhaseSetReplica<int>;
template class PnSetReplica<int>;
template class OrSetReplica<int>;
template class LwwSetReplica<int>;
template class LwwRegisterReplica<int>;

}  // namespace ucw
