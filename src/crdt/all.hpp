// Umbrella header for the CRDT baselines of Section VI.
#pragma once

#include "crdt/counter.hpp"        // IWYU pragma: export
#include "crdt/gset.hpp"           // IWYU pragma: export
#include "crdt/lww_register.hpp"   // IWYU pragma: export
#include "crdt/lww_set.hpp"        // IWYU pragma: export
#include "crdt/or_set.hpp"         // IWYU pragma: export
#include "crdt/pn_set.hpp"         // IWYU pragma: export
#include "crdt/sim_object.hpp"     // IWYU pragma: export
#include "crdt/two_phase_set.hpp"  // IWYU pragma: export
