// OR-Set (Observed-Remove set; paper Section VI, references [9], [20]):
// the best-documented eventually consistent set and the object whose
// concurrent specification is Definition 10 (Insert-wins).
//
// Every insertion carries a globally unique tag (pid, seq); a removal
// black-lists exactly the tags its replica has *observed*. A concurrent
// insertion's tag is unknown to the remover, so the insertion survives —
// insert wins. Tombstones keep removals effective against insertions
// delivered later (the network is not causal), making apply idempotent
// and order-insensitive, hence strong eventual consistency.
//
// The paper's Fig. 1b run shows the semantic gap to update consistency:
// concurrent I(1)/D(1) and I(2)/D(2) pairs converge to {1,2} here, a
// state no linearization of the four updates can reach.
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "clock/timestamp.hpp"

namespace ucw {

struct OrSetTag {
  ProcessId pid = 0;
  std::uint64_t seq = 0;
  friend constexpr auto operator<=>(const OrSetTag&, const OrSetTag&) =
      default;
};

template <typename V>
class OrSetReplica {
 public:
  struct Message {
    bool is_remove = false;
    V value;
    std::vector<OrSetTag> tags;  ///< insert: the new tag; remove: observed
  };

  explicit OrSetReplica(ProcessId pid) : pid_(pid) {}

  [[nodiscard]] ProcessId pid() const { return pid_; }

  /// Prepares an insertion with a fresh unique tag.
  [[nodiscard]] Message local_insert(V v) {
    return Message{false, std::move(v), {OrSetTag{pid_, next_seq_++}}};
  }

  /// Prepares a removal of the tags this replica currently observes for
  /// v (possibly none: removing an unseen element is a no-op).
  [[nodiscard]] Message local_remove(V v) {
    Message m{true, v, {}};
    auto it = live_.find(v);
    if (it != live_.end()) {
      m.tags.assign(it->second.begin(), it->second.end());
    }
    return m;
  }

  void apply(ProcessId /*from*/, const Message& m) {
    if (m.is_remove) {
      for (const OrSetTag& t : m.tags) {
        tombstones_.insert(t);
        auto it = live_.find(m.value);
        if (it != live_.end()) {
          it->second.erase(t);
          if (it->second.empty()) live_.erase(it);
        }
      }
    } else {
      const OrSetTag& t = m.tags.front();
      if (tombstones_.count(t) == 0) {
        live_[m.value].insert(t);
      }
    }
  }

  [[nodiscard]] std::set<V> read() const {
    std::set<V> out;
    for (const auto& [v, tags] : live_) {
      if (!tags.empty()) out.insert(v);
    }
    return out;
  }

  /// Tags this replica currently holds for `v` (tests / diagnostics).
  [[nodiscard]] std::size_t tag_count(const V& v) const {
    auto it = live_.find(v);
    return it == live_.end() ? 0 : it->second.size();
  }

  [[nodiscard]] std::size_t approx_bytes() const {
    std::size_t n = tombstones_.size() * sizeof(OrSetTag);
    for (const auto& [v, tags] : live_) {
      n += sizeof(V) + tags.size() * sizeof(OrSetTag);
    }
    return n;
  }

 private:
  ProcessId pid_;
  std::uint64_t next_seq_ = 0;
  std::map<V, std::set<OrSetTag>> live_;
  std::set<OrSetTag> tombstones_;
};

}  // namespace ucw
