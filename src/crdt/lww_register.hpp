// LWW register: the CRDT counterpart of Algorithm 2 restricted to one
// cell. Kept separate from core so the comparison benches can pit the
// paper's construction against the standard CRDT formulation on equal
// footing (they coincide by design — a good cross-validation target).
#pragma once

#include "clock/timestamp.hpp"

namespace ucw {

template <typename V>
class LwwRegisterReplica {
 public:
  struct Message {
    Stamp stamp;
    V value;
  };

  LwwRegisterReplica(ProcessId pid, V v0)
      : pid_(pid), clock_(pid), stamp_{0, 0}, value_(std::move(v0)) {}

  [[nodiscard]] ProcessId pid() const { return pid_; }

  [[nodiscard]] Message local_write(V v) {
    return Message{clock_.tick(), std::move(v)};
  }

  void apply(ProcessId /*from*/, const Message& m) {
    clock_.observe(m.stamp);
    if (stamp_ < m.stamp) {
      stamp_ = m.stamp;
      value_ = m.value;
    }
  }

  [[nodiscard]] const V& read() const { return value_; }
  [[nodiscard]] Stamp stamp() const { return stamp_; }

 private:
  ProcessId pid_;
  LamportClock clock_;
  Stamp stamp_;
  V value_;
};

}  // namespace ucw
