// Explicit instantiations of the common configurations.
#include "core/all.hpp"

namespace ucw {

template class ReplayReplica<SetAdt<int>>;
template class ReplayReplica<CounterAdt>;
template class ReplayReplica<DocumentAdt>;
template class StampedLog<SetAdt<int>>;
template class SimUcObject<SetAdt<int>>;
template class MemoryReplica<std::string, int>;
template class QuorumRegister<int>;
template class UcSet<int>;
template class UcRegister<int>;

}  // namespace ucw
