// Algorithm 2: the update-consistent shared memory.
//
// Orders writes exactly like Algorithm 1 (Lamport stamp, last-writer-
// wins per register) but exploits the register semantics: overwritten
// values can never be read again, so only the newest (stamp, value) per
// register is kept. Reads and write-applications are O(log |X|) map
// operations (the paper says "constant time"; an unordered map would
// make it expected O(1) — we keep determinism and ordering for the
// examples), and memory is bounded by the number of registers, not by
// history length.
#pragma once

#include <cstdint>
#include <map>

#include "clock/timestamp.hpp"
#include "net/sim_network.hpp"
#include "util/assert.hpp"

namespace ucw {

template <typename K, typename V>
struct MemWriteMessage {
  Stamp stamp;
  K reg;
  V value;
};

struct MemoryStats {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t applied = 0;        ///< writes that won their register
  std::uint64_t superseded = 0;     ///< writes older than the current cell
};

/// One replica of the shared memory mem(X, V, v0); wire it to a
/// SimNetwork<MemWriteMessage<K,V>> like SimUcMemory does.
template <typename K, typename V>
class MemoryReplica {
 public:
  MemoryReplica(ProcessId pid, V v0) : pid_(pid), clock_(pid), v0_(v0) {}

  [[nodiscard]] ProcessId pid() const { return pid_; }
  [[nodiscard]] const MemoryStats& stats() const { return stats_; }

  /// Algorithm 2, write(x, v): stamp and return the message to broadcast.
  [[nodiscard]] MemWriteMessage<K, V> local_write(K reg, V value) {
    ++stats_.writes;
    const Stamp stamp = clock_.tick();
    return MemWriteMessage<K, V>{stamp, std::move(reg), std::move(value)};
  }

  /// Algorithm 2, on receive: keep the lexicographically newest write.
  void apply(const MemWriteMessage<K, V>& m) {
    clock_.observe(m.stamp);
    auto it = cells_.find(m.reg);
    if (it == cells_.end()) {
      cells_.emplace(m.reg, Cell{m.stamp, m.value});
      ++stats_.applied;
    } else if (it->second.stamp < m.stamp) {
      it->second = Cell{m.stamp, m.value};
      ++stats_.applied;
    } else {
      ++stats_.superseded;
    }
  }

  /// Algorithm 2, read(x): the locally newest value, v0 if never written.
  [[nodiscard]] V read(const K& reg) const {
    ++stats_.reads;
    auto it = cells_.find(reg);
    return it == cells_.end() ? v0_ : it->second.value;
  }

  /// Registers currently materialized (memory-complexity bench: bounded
  /// by |X|, independent of the number of writes).
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  [[nodiscard]] std::size_t approx_bytes() const {
    return cells_.size() * (sizeof(K) + sizeof(Cell));
  }

 private:
  struct Cell {
    Stamp stamp;
    V value;
  };

  ProcessId pid_;
  LamportClock clock_;
  V v0_;
  std::map<K, Cell> cells_;
  mutable MemoryStats stats_;
};

/// Facade wiring a MemoryReplica to the simulated network.
template <typename K, typename V>
class SimUcMemory {
 public:
  using Message = MemWriteMessage<K, V>;

  SimUcMemory(ProcessId pid, V v0, SimNetwork<Message>& net)
      : replica_(pid, std::move(v0)), net_(&net) {
    net_->set_handler(pid, [this](ProcessId, const Message& m) {
      replica_.apply(m);
    });
  }

  SimUcMemory(const SimUcMemory&) = delete;
  SimUcMemory& operator=(const SimUcMemory&) = delete;

  void write(K reg, V value) {
    auto m = replica_.local_write(std::move(reg), std::move(value));
    net_->broadcast(replica_.pid(), m);
  }

  [[nodiscard]] V read(const K& reg) const { return replica_.read(reg); }

  [[nodiscard]] MemoryReplica<K, V>& replica() { return replica_; }
  [[nodiscard]] const MemoryReplica<K, V>& replica() const {
    return replica_;
  }

 private:
  MemoryReplica<K, V> replica_;
  SimNetwork<Message>* net_;
};

}  // namespace ucw
