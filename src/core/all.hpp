// Umbrella header for the paper's constructions.
#pragma once

#include "core/memory_object.hpp"  // IWYU pragma: export
#include "core/message.hpp"        // IWYU pragma: export
#include "core/quorum_object.hpp"  // IWYU pragma: export
#include "core/replica.hpp"        // IWYU pragma: export
#include "core/stamped_log.hpp"    // IWYU pragma: export
#include "core/thread_object.hpp"  // IWYU pragma: export
#include "core/uc_object.hpp"      // IWYU pragma: export
#include "core/wrappers.hpp"       // IWYU pragma: export
