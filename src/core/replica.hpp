// Algorithm 1: the universal strong-update-consistent replica.
//
// Faithful to the paper's pseudocode — a Lamport clock, a timestamped
// update log, one broadcast per update, queries answered by replaying the
// log in timestamp order — plus the three execution policies Section
// VII-C sketches:
//
//   NaiveReplay  — the literal Algorithm 1: every query replays the whole
//                  log from s0. O(|log|) per query, zero extra memory.
//   CachedPrefix — keeps the state obtained from the already-applied
//                  prefix; in-order arrivals extend it in O(1), a message
//                  older than the cached prefix ("very late message")
//                  discards the cache and the next query replays fully.
//   Snapshot     — additionally checkpoints the state every K applied
//                  updates; a late message restores the nearest snapshot
//                  at or before its insertion point and replays the
//                  suffix: late messages cost O(K + distance) instead of
//                  O(|log|).
//
// The replica is transport-agnostic and single-threaded by design (the
// paper's processes are sequential); the runtime glue delivers messages
// and invokes operations from one logical thread per replica. Wait-free:
// neither local_update nor query ever blocks on the network.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "adt/concepts.hpp"
#include "clock/matrix_clock.hpp"
#include "clock/timestamp.hpp"
#include "core/message.hpp"
#include "core/stamped_log.hpp"

namespace ucw {

enum class ReplayPolicy { NaiveReplay, CachedPrefix, Snapshot };

[[nodiscard]] inline std::string to_string(ReplayPolicy p) {
  switch (p) {
    case ReplayPolicy::NaiveReplay:
      return "naive-replay";
    case ReplayPolicy::CachedPrefix:
      return "cached-prefix";
    case ReplayPolicy::Snapshot:
      return "snapshot";
  }
  return "?";
}

struct ReplicaStats {
  std::uint64_t local_updates = 0;
  std::uint64_t remote_updates = 0;
  std::uint64_t duplicate_updates = 0;
  std::uint64_t queries = 0;
  std::uint64_t transitions = 0;        ///< ADT transitions executed
  std::uint64_t full_replays = 0;       ///< replays started from s0/base
  std::uint64_t late_insertions = 0;    ///< arrivals before the log tail
  std::uint64_t cache_invalidations = 0;
  std::uint64_t snapshot_restores = 0;
  std::uint64_t gc_folded = 0;          ///< log entries folded by GC
  std::uint64_t base_installs = 0;      ///< snapshot bases adopted (catch-up)
  std::uint64_t absorbed_below_floor = 0;  ///< replays of folded entries
};

template <UqAdt A>
class ReplayReplica {
 public:
  struct Config {
    ReplayPolicy policy = ReplayPolicy::CachedPrefix;
    std::size_t snapshot_interval = 64;  ///< K for ReplayPolicy::Snapshot
    /// Stamp from this clock instead of a private per-replica one. The
    /// UCStore points every keyed replica of a process at one store-wide
    /// clock: stamps then rise monotonically across the *whole* envelope
    /// stream a process emits, which is what lets stability (and thus GC
    /// and snapshot floors) be tracked once per process instead of once
    /// per key. Still a valid Lamport clock per key, so per-key
    /// arbitration (Theorem 2) is untouched. Atomic so that the shard
    /// engines of a worker pool — each replica still single-owner, but
    /// owners spread across threads — can tick and merge it without
    /// coordination; the replica itself is an engine-local view over
    /// this store clock. Not owned.
    AtomicLamportClock* shared_clock = nullptr;
    /// Tolerate arrivals at or below the GC floor by absorbing them as
    /// duplicates instead of failing loudly. Only sound when the floor
    /// provably covers every entry this replica ever received (the
    /// store-level tracker guarantees exactly that under FIFO links), so
    /// a below-floor arrival can only be a redelivery of a folded entry —
    /// e.g. at-least-once duplicates, or live envelopes overlapping an
    /// installed snapshot after catch-up.
    bool absorb_below_floor = false;
    /// Arbitration order for the log (mutation corpus only; anything but
    /// kLexicographic is a deliberately injected bug — see src/faults/).
    StampOrder stamp_order = StampOrder::kLexicographic;
  };

  ReplayReplica(A adt, ProcessId pid, Config config = {})
      : adt_(std::move(adt)),
        pid_(pid),
        config_(config),
        clock_(pid),
        log_(adt_),
        cache_(adt_.initial()),
        scratch_(adt_.initial()) {
    UCW_CHECK(config_.snapshot_interval >= 1);
    log_.set_order(config_.stamp_order);
  }

  [[nodiscard]] ProcessId pid() const { return pid_; }
  [[nodiscard]] const A& adt() const { return adt_; }
  [[nodiscard]] const ReplicaStats& stats() const { return stats_; }
  [[nodiscard]] const StampedLog<A>& log() const { return log_; }
  [[nodiscard]] LogicalTime clock_now() const {
    return config_.shared_clock ? config_.shared_clock->now() : clock_.now();
  }

  /// Algorithm 1, update(u): ticks the clock and returns the message the
  /// caller must reliably broadcast (including back to this replica via
  /// apply(), which SimUcObject does synchronously).
  [[nodiscard]] UpdateMessage<A> local_update(typename A::Update u) {
    ++stats_.local_updates;
    const Stamp stamp = tick_clock();
    if (stability_) {
      stability_->advance_self(stamp.clock);
    }
    return UpdateMessage<A>{stamp, std::move(u), {}};
  }

  /// Applies a locally issued update that was already stamped from the
  /// shared store clock. The store router stamps at update() time —
  /// possibly on a different thread than the engine owning this replica
  /// (the atomic clock makes that sound) — so the replica only has to
  /// account and self-deliver.
  void apply_local(const UpdateMessage<A>& m) {
    ++stats_.local_updates;
    if (stability_) stability_->advance_self(m.stamp.clock);
    apply(pid_, m);
  }

  /// Algorithm 1, on receive: merges the clock and inserts into the log.
  /// Used for both self-delivery and remote messages.
  ///
  /// Stability deliberately uses only *direct* knowledge — the clocks of
  /// messages this replica itself received. Gossiped rows (what the
  /// sender holds) must never raise the fold floor: they say nothing
  /// about what is still in flight towards *us*, and folding past an
  /// in-flight stamp would break convergence.
  void apply(ProcessId from, const UpdateMessage<A>& m) {
    observe_clock(m.stamp.clock);
    if (from != pid_) ++stats_.remote_updates;
    if (stability_) {
      // FIFO links make "max clock received from `from`" equal to
      // "received everything from `from` up to that clock".
      stability_->observe_direct(from, m.stamp.clock);
    }
    if (config_.absorb_below_floor && m.stamp.clock <= log_.floor()) {
      // Redelivery of an already-folded entry (see Config): the base
      // state reflects it, so dropping it is the set-union no-op of
      // Algorithm 1, just against the compacted prefix.
      ++stats_.duplicate_updates;
      ++stats_.absorbed_below_floor;
      return;
    }
    auto pos = log_.insert(m.stamp, m.update);
    if (!pos.has_value()) {
      ++stats_.duplicate_updates;
      return;
    }
    on_inserted(*pos);
  }

  /// Algorithm 1, query(q): replays the log (per policy) and evaluates.
  [[nodiscard]] typename A::QueryOut query(const typename A::QueryIn& qi) {
    return query_with_stamp(qi).first;
  }

  /// As query(), also returning the stamp of the query event (queries
  /// tick the clock too — Algorithm 1 line 13). Used by the history
  /// recorder to stamp query events exactly as the algorithm does.
  [[nodiscard]] std::pair<typename A::QueryOut, Stamp> query_with_stamp(
      const typename A::QueryIn& qi) {
    ++stats_.queries;
    const Stamp stamp = tick_clock();
    return {adt_.output(current_state(), qi), stamp};
  }

  /// The converged value the replica currently holds (replays if needed).
  [[nodiscard]] const typename A::State& current_state() {
    switch (config_.policy) {
      case ReplayPolicy::NaiveReplay: {
        ++stats_.full_replays;
        scratch_ = log_.base_state();
        for (std::size_t i = 0; i < log_.size(); ++i) {
          scratch_ = adt_.transition(std::move(scratch_), log_.at(i).update);
          ++stats_.transitions;
        }
        return scratch_;
      }
      case ReplayPolicy::CachedPrefix:
      case ReplayPolicy::Snapshot: {
        extend_cache();
        return cache_;
      }
    }
    return cache_;
  }

  /// Stamps of every update currently visible (certificate recording).
  [[nodiscard]] std::vector<Stamp> visible_stamps() const {
    return log_.stamps();
  }

  /// Rough resident footprint: log plus snapshots (memory benches).
  [[nodiscard]] std::size_t approx_bytes() const {
    return log_.approx_bytes() +
           snapshots_.size() * sizeof(typename A::State);
  }

  // ----- Section VII-C: stability tracking and log GC ------------------

  /// Enables stability tracking (requires FIFO links; see stamped_log).
  void enable_stability(std::size_t n_processes) {
    stability_.emplace(pid_, n_processes);
  }
  [[nodiscard]] bool stability_enabled() const {
    return stability_.has_value();
  }
  [[nodiscard]] const MatrixClock* stability() const {
    return stability_ ? &*stability_ : nullptr;
  }
  void mark_crashed(ProcessId p) {
    if (stability_) stability_->mark_crashed(p);
  }

  /// Folds the stable prefix into the base state; returns entries folded.
  std::size_t collect_garbage() {
    if (!stability_) return 0;
    return fold_to(stability_->stability_floor());
  }

  /// Folds the log prefix at or below `floor` into the base state. The
  /// caller guarantees no entry it still needs applied can be stamped at
  /// or below `floor` — either its own per-key tracker (collect_garbage)
  /// or the store-level tracker pushing one floor down across the whole
  /// keyspace. Returns entries folded.
  std::size_t fold_to(LogicalTime floor) {
    // Cached/snapshot positions index the live log; folding shifts them.
    const std::size_t folded = log_.fold(adt_, floor);
    if (folded > 0) {
      stats_.gc_folded += folded;
      rebase_after_fold(folded);
    }
    return folded;
  }

  /// Adopts a donor's compacted prefix (snapshot shipping): replaces the
  /// log base with `base` covering everything stamped <= floor, drops the
  /// local entries that prefix subsumes and rebuilds the caches. The
  /// caller then replays the donor's unstable suffix through apply(),
  /// whose set-union semantics absorb whatever overlaps survive locally.
  /// Returns false (and changes nothing) when the local floor already
  /// covers `floor`.
  bool install_base(typename A::State base, LogicalTime floor) {
    if (!log_.install_base(std::move(base), floor)) return false;
    ++stats_.base_installs;
    observe_clock(floor);  // new local stamps must clear the folded prefix
    snapshots_.clear();
    cache_ = log_.base_state();
    cache_len_ = 0;
    return true;
  }

 private:
  // Engine-local view over the clock: the shared atomic store clock
  // when configured, else the replica's own sequential one.
  [[nodiscard]] Stamp tick_clock() {
    return config_.shared_clock ? config_.shared_clock->tick()
                                : clock_.tick();
  }
  void observe_clock(LogicalTime t) {
    if (config_.shared_clock) {
      config_.shared_clock->observe(t);
    } else {
      clock_.observe(t);
    }
  }

  void on_inserted(std::size_t pos) {
    if (config_.policy == ReplayPolicy::NaiveReplay) return;
    if (pos + 1 == log_.size()) return;  // tail append: cache still valid
    ++stats_.late_insertions;
    if (pos < cache_len_) {
      // The cached prefix contains states that no longer reflect the
      // arbitration order: roll back.
      if (config_.policy == ReplayPolicy::Snapshot) {
        restore_snapshot(pos);
      } else {
        ++stats_.cache_invalidations;
        cache_ = log_.base_state();
        cache_len_ = 0;
      }
    }
    // Snapshots at or after the insertion point describe shifted indices.
    while (!snapshots_.empty() && snapshots_.back().applied > pos) {
      snapshots_.pop_back();
    }
  }

  void restore_snapshot(std::size_t pos) {
    ++stats_.snapshot_restores;
    while (!snapshots_.empty() && snapshots_.back().applied > pos) {
      snapshots_.pop_back();
    }
    if (snapshots_.empty()) {
      ++stats_.cache_invalidations;
      cache_ = log_.base_state();
      cache_len_ = 0;
    } else {
      cache_ = snapshots_.back().state;
      cache_len_ = snapshots_.back().applied;
    }
  }

  void extend_cache() {
    if (cache_len_ == 0 && log_.size() > 0) {
      ++stats_.full_replays;
      cache_ = log_.base_state();
    }
    while (cache_len_ < log_.size()) {
      cache_ = adt_.transition(std::move(cache_), log_.at(cache_len_).update);
      ++stats_.transitions;
      ++cache_len_;
      if (config_.policy == ReplayPolicy::Snapshot &&
          cache_len_ % config_.snapshot_interval == 0) {
        snapshots_.push_back(SnapshotEntry{cache_len_, cache_});
      }
    }
  }

  void rebase_after_fold(std::size_t folded) {
    // Log indices shifted down by `folded`; drop snapshots that pointed
    // into the folded prefix and re-anchor the rest.
    std::vector<SnapshotEntry> kept;
    for (auto& s : snapshots_) {
      if (s.applied >= folded) {
        kept.push_back(SnapshotEntry{s.applied - folded, std::move(s.state)});
      }
    }
    snapshots_ = std::move(kept);
    if (cache_len_ >= folded) {
      cache_len_ -= folded;
    } else {
      cache_ = log_.base_state();
      cache_len_ = 0;
    }
  }

  struct SnapshotEntry {
    std::size_t applied;  ///< log prefix length the state corresponds to
    typename A::State state;
  };

  A adt_;
  ProcessId pid_;
  Config config_;
  LamportClock clock_;
  StampedLog<A> log_;
  ReplicaStats stats_;

  typename A::State cache_;
  std::size_t cache_len_ = 0;
  std::vector<SnapshotEntry> snapshots_;
  typename A::State scratch_;  // NaiveReplay work area

  std::optional<MatrixClock> stability_;
};

}  // namespace ucw
