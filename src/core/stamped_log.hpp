// The timestamped update log of Algorithm 1.
//
// `updates_i` in the paper: every update the replica knows, keyed by its
// Lamport stamp, iterated in stamp order — the arbitration order all
// replicas converge on. Kept as a sorted vector: amortized O(1) append
// for in-order arrivals (the overwhelmingly common case once clocks have
// synchronized) and O(n) insertion for stragglers, with the insertion
// position reported so the replay policies know how much cached state to
// invalidate.
//
// A folded *base state* supports Section VII-C garbage collection: a
// stable prefix of the log is applied once into `base_state` and the
// entries dropped; `floor` remembers the largest folded clock so a
// (necessarily buggy or Byzantine) message below the floor is rejected
// loudly instead of corrupting convergence.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "adt/concepts.hpp"
#include "clock/timestamp.hpp"
#include "core/message.hpp"
#include "util/assert.hpp"

namespace ucw {

/// Arbitration order of the log. kLexicographic is Algorithm 1's stamp
/// order — (clock, pid) — the only correct one. The other two are
/// mutation-corpus perversions (src/faults/): clock-major orders that
/// break ties wrongly, kept here because the tie-break lives in the
/// log's insertion comparator. Both still extend the per-process clock
/// order (stamps of one process strictly increase), so fold/install_base
/// prefix arithmetic — which works by clock alone — stays valid; only
/// the cross-replica agreement on tie winners is perverted.
enum class StampOrder : std::uint8_t {
  kLexicographic,        ///< (clock, pid): the paper's total order
  kClockThenArrival,     ///< FAULT: equal clocks keep arrival order
  kClockThenPidInverted, ///< FAULT: equal clocks order by *descending* pid
};

template <UqAdt A>
class StampedLog {
 public:
  struct Entry {
    Stamp stamp;
    typename A::Update update;
  };

  explicit StampedLog(const A& adt) : base_state_(adt.initial()) {}

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const Entry& at(std::size_t i) const { return entries_[i]; }
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// Selects the arbitration order (mutation corpus only; see StampOrder).
  /// Must be set before the first insert.
  void set_order(StampOrder order) {
    UCW_CHECK(entries_.empty());
    order_ = order;
  }
  [[nodiscard]] StampOrder order() const { return order_; }

  /// Inserts in stamp order; returns the position, or nullopt for a
  /// duplicate stamp (reliable broadcast may not dedupe; Algorithm 1's
  /// set-union does).
  std::optional<std::size_t> insert(Stamp stamp,
                                    typename A::Update update) {
    UCW_CHECK_MSG(stamp.clock > floor_,
                  "update stamped below the GC floor: stability tracking "
                  "requires FIFO links");
    // Fast path: append at the tail.
    if (entries_.empty() || stamp_less(entries_.back().stamp, stamp)) {
      entries_.push_back(Entry{stamp, std::move(update)});
      return entries_.size() - 1;
    }
    // upper_bound (not lower_bound): under the fault orders, equal-clock
    // stamps compare equivalent, and inserting after the run is what
    // makes kClockThenArrival actually preserve arrival order. The exact
    // duplicate check then scans the equivalence run backwards.
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), stamp,
        [this](const Stamp& s, const Entry& e) {
          return stamp_less(s, e.stamp);
        });
    for (auto p = it; p != entries_.begin();) {
      --p;
      if (stamp_less(p->stamp, stamp)) break;
      if (p->stamp == stamp) return std::nullopt;
    }
    const std::size_t pos = static_cast<std::size_t>(it - entries_.begin());
    entries_.insert(it, Entry{stamp, std::move(update)});
    return pos;
  }

  /// State all entries are replayed on top of (s0 until GC folds).
  [[nodiscard]] const typename A::State& base_state() const {
    return base_state_;
  }
  [[nodiscard]] LogicalTime floor() const { return floor_; }

  /// Replaces the base state with a donor's compacted prefix (snapshot
  /// shipping): entries at or below `new_floor` are dropped — the donor's
  /// base already reflects them, replayed in the same stamp order every
  /// correct replica uses — and the floor rises. A no-op returning false
  /// when the local floor is already at or past `new_floor` (the local
  /// base then covers at least as much history as the offered one).
  bool install_base(typename A::State state, LogicalTime new_floor) {
    if (new_floor <= floor_) return false;
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), new_floor,
        [](LogicalTime f, const Entry& e) { return f < e.stamp.clock; });
    entries_.erase(entries_.begin(), it);
    base_state_ = std::move(state);
    floor_ = new_floor;
    return true;
  }

  /// Folds every entry with stamp.clock <= new_floor into the base state
  /// (Section VII-C GC). Returns the number of entries folded. Caller
  /// guarantees no future message can be stamped at or below new_floor.
  std::size_t fold(const A& adt, LogicalTime new_floor) {
    if (new_floor <= floor_) return 0;
    std::size_t n = 0;
    while (n < entries_.size() && entries_[n].stamp.clock <= new_floor) {
      base_state_ = adt.transition(std::move(base_state_),
                                   entries_[n].update);
      ++n;
    }
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<std::ptrdiff_t>(n));
    floor_ = new_floor;
    return n;
  }

  /// Stamps currently in the log (certificate recording).
  [[nodiscard]] std::vector<Stamp> stamps() const {
    std::vector<Stamp> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.stamp);
    return out;
  }

  /// Rough resident size for the memory benches.
  [[nodiscard]] std::size_t approx_bytes() const {
    return entries_.size() * sizeof(Entry);
  }

 private:
  [[nodiscard]] bool stamp_less(const Stamp& a, const Stamp& b) const {
    switch (order_) {
      case StampOrder::kLexicographic:
        return a < b;
      case StampOrder::kClockThenArrival:
        return a.clock < b.clock;
      case StampOrder::kClockThenPidInverted:
        return a.clock != b.clock ? a.clock < b.clock : b.pid < a.pid;
    }
    return a < b;
  }

  std::vector<Entry> entries_;
  typename A::State base_state_;
  LogicalTime floor_ = 0;
  StampOrder order_ = StampOrder::kLexicographic;
};

}  // namespace ucw
