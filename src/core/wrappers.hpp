// Typed conveniences over SimUcObject: the API most examples use.
//
// Each wrapper pins the ADT and exposes the natural verbs (insert/remove/
// contains, add/value, write/read, …) while inheriting Algorithm 1's
// guarantees: wait-free operations, one broadcast per update, convergence
// to the state of the agreed update linearization.
#pragma once

#include "adt/all.hpp"
#include "core/uc_object.hpp"

namespace ucw {

/// Update-consistent replicated set (the paper's running example).
template <typename V = int>
class UcSet {
 public:
  using Adt = SetAdt<V>;
  using Message = UpdateMessage<Adt>;

  UcSet(ProcessId pid, SimNetwork<Message>& net,
        typename ReplayReplica<Adt>::Config config = {})
      : object_(Adt{}, pid, net, config) {}

  void insert(V v) { (void)object_.update(Adt::insert(std::move(v))); }
  void remove(V v) { (void)object_.update(Adt::remove(std::move(v))); }
  [[nodiscard]] std::set<V> read() { return object_.query(Adt::read()); }
  [[nodiscard]] bool contains(const V& v) {
    return read().count(v) > 0;
  }

  [[nodiscard]] SimUcObject<Adt>& object() { return object_; }

 private:
  SimUcObject<Adt> object_;
};

/// Update-consistent counter (a commuting-updates CRDT; Section VII-C).
class UcCounter {
 public:
  using Adt = CounterAdt;
  using Message = UpdateMessage<Adt>;

  UcCounter(ProcessId pid, SimNetwork<Message>& net,
            typename ReplayReplica<Adt>::Config config = {})
      : object_(Adt{}, pid, net, config) {}

  void add(std::int64_t delta) { (void)object_.update(Adt::add(delta)); }
  void increment() { add(1); }
  void decrement() { add(-1); }
  [[nodiscard]] std::int64_t value() { return object_.query(Adt::read()); }

  [[nodiscard]] SimUcObject<Adt>& object() { return object_; }

 private:
  SimUcObject<Adt> object_;
};

/// Update-consistent single register (last writer in Lamport order wins).
template <typename V = int>
class UcRegister {
 public:
  using Adt = RegisterAdt<V>;
  using Message = UpdateMessage<Adt>;

  UcRegister(ProcessId pid, SimNetwork<Message>& net, V v0 = V{},
             typename ReplayReplica<Adt>::Config config = {})
      : object_(Adt{std::move(v0)}, pid, net, config) {}

  void write(V v) { (void)object_.update(Adt::write(std::move(v))); }
  [[nodiscard]] V read() { return object_.query(Adt::read()); }

  [[nodiscard]] SimUcObject<Adt>& object() { return object_; }

 private:
  SimUcObject<Adt> object_;
};

/// Update-consistent collaborative document (positional edits arbitrated
/// by the update linearization).
class UcDocument {
 public:
  using Adt = DocumentAdt;
  using Message = UpdateMessage<Adt>;

  UcDocument(ProcessId pid, SimNetwork<Message>& net,
             typename ReplayReplica<Adt>::Config config = {})
      : object_(Adt{}, pid, net, config) {}

  void insert(std::size_t pos, std::string text) {
    (void)object_.update(Adt::insert_at(pos, std::move(text)));
  }
  void erase(std::size_t pos, std::size_t count = 1) {
    (void)object_.update(Adt::erase_at(pos, count));
  }
  [[nodiscard]] std::string text() { return object_.query(Adt::read()); }

  [[nodiscard]] SimUcObject<Adt>& object() { return object_; }

 private:
  SimUcObject<Adt> object_;
};

}  // namespace ucw
