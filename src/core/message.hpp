// Wire format of Algorithm 1.
//
// One broadcast per update, carrying the update and its (clock, pid)
// timestamp — the only network traffic the construction needs (Section
// VII-C: "a unique message is broadcast for each update and each message
// only contains the information to identify the update and a timestamp
// composed of two integer values"). The optional `known` vector
// piggybacks the sender's received-clock row for the stability tracker;
// it is empty unless garbage collection is enabled.
#pragma once

#include <vector>

#include "adt/concepts.hpp"
#include "clock/timestamp.hpp"

namespace ucw {

template <UqAdt A>
struct UpdateMessage {
  Stamp stamp;
  typename A::Update update;
  std::vector<LogicalTime> known;  ///< sender's stability row (optional)
};

/// Approximate wire size in bytes, for the message-complexity benches:
/// two varint-ish integers for the stamp plus the payload estimate.
template <UqAdt A>
[[nodiscard]] std::size_t wire_size(const UpdateMessage<A>& m) {
  return sizeof(m.stamp.clock) + sizeof(m.stamp.pid) +
         sizeof(typename A::Update) +
         m.known.size() * sizeof(LogicalTime);
}

}  // namespace ucw
