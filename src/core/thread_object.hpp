// ThreadUcObject: Algorithm 1 on the real-thread transport.
//
// One object per OS thread (the paper's processes are sequential, and
// the replica is deliberately single-owner — no internal locking to
// contend on). The owning thread calls update/query freely; remote
// updates accumulate in the inbox and are folded in by `poll()`, which
// update/query invoke opportunistically so a busy owner never needs to
// schedule pumping. Wait-freedom carries over verbatim: update enqueues
// to peers and returns; query answers from the local log.
//
//   ThreadNetwork<ThreadUcObject<SetAdt<int>>::Message> net(n);
//   // thread p:
//   ThreadUcObject<SetAdt<int>> obj(SetAdt<int>{}, p, net);
//   obj.update(SetAdt<int>::insert(1));
//   auto s = obj.query(SetAdt<int>::read());
//   obj.drain_until(n_total_updates);   // quiescence barrier for tests
#pragma once

#include "core/replica.hpp"
#include "net/thread_network.hpp"

namespace ucw {

template <UqAdt A>
class ThreadUcObject {
 public:
  using Message = UpdateMessage<A>;

  ThreadUcObject(A adt, ProcessId pid, ThreadNetwork<Message>& net,
                 typename ReplayReplica<A>::Config config = {})
      : replica_(std::move(adt), pid, config), net_(&net) {}

  ThreadUcObject(const ThreadUcObject&) = delete;
  ThreadUcObject& operator=(const ThreadUcObject&) = delete;

  /// Wait-free update: apply locally, enqueue to every peer, return.
  Stamp update(typename A::Update u) {
    poll();
    auto m = replica_.local_update(std::move(u));
    replica_.apply(replica_.pid(), m);  // synchronous self-delivery
    net_->broadcast_others(replica_.pid(), m);
    return m.stamp;
  }

  /// Wait-free query from the local state (after folding the inbox in).
  [[nodiscard]] typename A::QueryOut query(const typename A::QueryIn& qi) {
    poll();
    return replica_.query(qi);
  }

  /// Applies every remote update currently queued; never blocks.
  std::size_t poll() {
    std::size_t applied = 0;
    while (auto env = net_->inbox(replica_.pid()).try_pop()) {
      replica_.apply(env->from, env->payload);
      ++applied;
    }
    return applied;
  }

  /// Blocks until the log holds `total_updates` entries (or the inbox is
  /// closed): the quiescence barrier tests and shutdown paths use. Not
  /// part of the wait-free operation surface.
  void drain_until(std::size_t total_updates) {
    poll();
    while (replica_.log().size() < total_updates) {
      auto env = net_->inbox(replica_.pid()).pop_wait();
      if (!env.has_value()) return;  // closed
      replica_.apply(env->from, env->payload);
    }
  }

  [[nodiscard]] ReplayReplica<A>& replica() { return replica_; }
  [[nodiscard]] const ReplayReplica<A>& replica() const { return replica_; }
  [[nodiscard]] ProcessId pid() const { return replica_.pid(); }

 private:
  ReplayReplica<A> replica_;
  ThreadNetwork<Message>* net_;
};

}  // namespace ucw
