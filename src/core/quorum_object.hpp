// Majority-quorum linearizable register (ABD-style): the strong-
// consistency baseline for experiment E8.
//
// The paper's introduction cites Attiya–Welch: under sequential
// consistency or linearizability some operation class must wait Ω(network
// latency), and availability is lost once a majority can crash. This
// baseline makes that cost measurable on the same simulated network the
// UC objects run on:
//
//   write(v): stamp with (local_max+1, pid), broadcast, complete on
//             majority ack — one round trip.
//   read():   broadcast a query, collect a majority of (stamp, value),
//             adopt the maximum, write it back to a majority, complete —
//             two round trips (the write-back keeps reads linearizable).
//
// Operations take completion callbacks because they genuinely wait; the
// benchmark records the virtual-time span between invocation and
// completion and contrasts it with the UC object's zero.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <variant>

#include "clock/timestamp.hpp"
#include "net/sim_network.hpp"

namespace ucw {

template <typename V>
struct QuorumMessage {
  enum class Type : std::uint8_t {
    WriteReq,
    WriteAck,
    ReadReq,
    ReadReply,
    WriteBackReq,
    WriteBackAck,
  };
  Type type;
  std::uint64_t op_id = 0;  ///< (origin, op_id) identifies the operation
  Stamp ts;
  V value{};
};

template <typename V>
class QuorumRegister {
 public:
  using Message = QuorumMessage<V>;
  using Done = std::function<void()>;

  QuorumRegister(ProcessId pid, V v0, SimNetwork<Message>& net)
      : pid_(pid), value_(std::move(v0)), net_(&net) {
    net_->set_handler(pid, [this](ProcessId from, const Message& m) {
      on_message(from, m);
    });
  }

  QuorumRegister(const QuorumRegister&) = delete;
  QuorumRegister& operator=(const QuorumRegister&) = delete;

  [[nodiscard]] ProcessId pid() const { return pid_; }
  [[nodiscard]] std::size_t majority() const { return net_->size() / 2 + 1; }

  /// Linearizable write; `done` fires when a majority acknowledged.
  void write(V v, Done done) {
    const std::uint64_t op = next_op_++;
    auto& pend = pending_[op];
    pend.done = std::move(done);
    pend.acks_needed = majority();
    Message m{Message::Type::WriteReq, op, Stamp{ts_.clock + 1, pid_},
              std::move(v)};
    net_->broadcast(pid_, m);
  }

  /// Linearizable read; `done(value)` fires after query + write-back.
  void read(std::function<void(V)> done) {
    const std::uint64_t op = next_op_++;
    auto& pend = pending_[op];
    pend.read_done = std::move(done);
    pend.acks_needed = majority();
    pend.best = Stamp{0, 0};
    Message m{Message::Type::ReadReq, op, Stamp{}, V{}};
    net_->broadcast(pid_, m);
  }

  /// Local cell (for tests / convergence checks).
  [[nodiscard]] const V& local_value() const { return value_; }
  [[nodiscard]] Stamp local_stamp() const { return ts_; }

 private:
  struct Pending {
    Done done;                          // write path
    std::function<void(V)> read_done;   // read path
    std::size_t acks_needed = 0;
    std::size_t acks = 0;
    Stamp best{};
    V best_value{};
    bool write_back_phase = false;
  };

  void on_message(ProcessId from, const Message& m) {
    switch (m.type) {
      case Message::Type::WriteReq:
      case Message::Type::WriteBackReq: {
        if (ts_ < m.ts) {
          ts_ = m.ts;
          value_ = m.value;
        }
        const auto ack_type = m.type == Message::Type::WriteReq
                                  ? Message::Type::WriteAck
                                  : Message::Type::WriteBackAck;
        reply(from, Message{ack_type, m.op_id, ts_, V{}});
        break;
      }
      case Message::Type::ReadReq:
        reply(from, Message{Message::Type::ReadReply, m.op_id, ts_, value_});
        break;
      case Message::Type::WriteAck:
      case Message::Type::WriteBackAck: {
        auto it = pending_.find(m.op_id);
        if (it == pending_.end()) break;
        auto& p = it->second;
        if (++p.acks >= p.acks_needed) {
          if (p.write_back_phase || !p.read_done) {
            // Operation complete.
            if (p.done) p.done();
            if (p.read_done) p.read_done(std::move(p.best_value));
            pending_.erase(it);
          }
        }
        break;
      }
      case Message::Type::ReadReply: {
        auto it = pending_.find(m.op_id);
        if (it == pending_.end()) break;
        auto& p = it->second;
        if (p.write_back_phase) break;  // stragglers from phase one
        if (p.best < m.ts) {
          p.best = m.ts;
          p.best_value = m.value;
        }
        if (++p.acks >= p.acks_needed) {
          // Phase two: write the adopted value back to a majority.
          p.write_back_phase = true;
          p.acks = 0;
          Message wb{Message::Type::WriteBackReq, m.op_id, p.best,
                     p.best_value};
          net_->broadcast(pid_, wb);
        }
        break;
      }
    }
  }

  void reply(ProcessId to, Message m) {
    if (to == pid_) {
      on_message(pid_, m);
    } else {
      net_->send(pid_, to, m);
    }
  }

  ProcessId pid_;
  Stamp ts_{0, 0};
  V value_;
  SimNetwork<Message>* net_;
  std::uint64_t next_op_ = 1;
  std::map<std::uint64_t, Pending> pending_;
};

}  // namespace ucw
