// SimUcObject: an Algorithm-1 object wired to the simulated network.
//
// The wait-free facade the examples and harnesses use: `update(u)`
// applies locally (self-delivery is synchronous, as in the paper's proof)
// and reliably broadcasts; `query(qi)` answers from local state alone.
// Neither touches the scheduler — operations complete in zero simulated
// time regardless of network latency, which is precisely the wait-freedom
// claim benchmarked against the quorum object in E8.
#pragma once

#include <functional>

#include "core/replica.hpp"
#include "net/sim_network.hpp"

namespace ucw {

template <UqAdt A>
class SimUcObject {
 public:
  using Message = UpdateMessage<A>;

  SimUcObject(A adt, ProcessId pid, SimNetwork<Message>& net,
              typename ReplayReplica<A>::Config config = {})
      : replica_(std::move(adt), pid, config), net_(&net) {
    net_->set_handler(pid, [this](ProcessId from, const Message& m) {
      replica_.apply(from, m);
      if (on_deliver_) on_deliver_(from, m);
    });
  }

  SimUcObject(const SimUcObject&) = delete;
  SimUcObject& operator=(const SimUcObject&) = delete;

  /// Wait-free update: local apply + one reliable broadcast.
  Stamp update(typename A::Update u) {
    auto m = replica_.local_update(std::move(u));
    const Stamp stamp = m.stamp;
    net_->broadcast(replica_.pid(), m);  // self-delivery applies locally
    return stamp;
  }

  /// Wait-free query, answered from the local log replay.
  [[nodiscard]] typename A::QueryOut query(const typename A::QueryIn& qi) {
    return replica_.query(qi);
  }
  [[nodiscard]] std::pair<typename A::QueryOut, Stamp> query_with_stamp(
      const typename A::QueryIn& qi) {
    return replica_.query_with_stamp(qi);
  }

  [[nodiscard]] ReplayReplica<A>& replica() { return replica_; }
  [[nodiscard]] const ReplayReplica<A>& replica() const { return replica_; }
  [[nodiscard]] ProcessId pid() const { return replica_.pid(); }

  /// Observer invoked after each delivery (runtime instrumentation).
  void set_delivery_observer(
      std::function<void(ProcessId, const Message&)> fn) {
    on_deliver_ = std::move(fn);
  }

 private:
  ReplayReplica<A> replica_;
  SimNetwork<Message>* net_;
  std::function<void(ProcessId, const Message&)> on_deliver_;
};

}  // namespace ucw
